"""Exporters: Chrome-trace/Perfetto JSON, JSONL event log, metrics.

The unified timeline this module writes is the cross-layer view the
profiler-only :mod:`repro.gpusim.trace` could not give: serving-side
spans (scheduler, plan lookups, advisor rankings, evalcache accesses)
and gpusim kernel leaves land in one document as separate Perfetto
*processes*, with fault injections as instant events on the affected
rows.  :mod:`repro.gpusim.trace` remains for profiler-session-only
exports and shares this module's row helpers.

All output is deterministic: events are emitted in depth-first span
order, sorted per row by ``(ts, -dur)`` (the Chrome convention for
nested complete events), and serialised with sorted keys — two
same-seed runs produce byte-identical files.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry
from .tracer import SimTracer, Span

#: Version stamped into the JSONL event log's header record and the
#: metrics-snapshot files.  Bump it when a record's shape changes so
#: the analyzer (:mod:`repro.obs.analyze`) rejects logs it would
#: misread instead of producing silently wrong reports.
SCHEMA_VERSION = 1

#: Versions the loaders accept (logs written before versioning carry
#: no header and are treated as version 1).
SUPPORTED_SCHEMA_VERSIONS = (1,)

#: Span category → (pid, process name, tid, thread name).  Everything
#: serving-side shares one process; gpusim kernel leaves get their own
#: so the GPU row reads like an nvprof timeline under the scheduler row.
_ROWS: Dict[str, Tuple[int, str, int, str]] = {
    "serve": (1, "serve", 1, "scheduler"),
    "advisor": (1, "serve", 1, "scheduler"),
    "evalcache": (1, "serve", 1, "scheduler"),
    "parallel": (1, "serve", 1, "scheduler"),
    "faults": (1, "serve", 1, "scheduler"),
    "gpu": (2, "gpusim", 1, "compute"),
    "memcpy": (2, "gpusim", 2, "copy engine"),
}
_DEFAULT_ROW = (1, "serve", 1, "scheduler")


def _row(cat: str) -> Tuple[int, str, int, str]:
    return _ROWS.get(cat, _DEFAULT_ROW)


def metadata_events(rows: Dict[int, Tuple[str, Dict[int, str]]]) -> List[dict]:
    """Perfetto ``M`` rows naming processes and threads.

    ``rows`` maps pid → (process name, {tid: thread name}).
    """
    events: List[dict] = []
    for pid in sorted(rows):
        process, tids = rows[pid]
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": process}})
        for tid in sorted(tids):
            events.append({"name": "thread_name", "ph": "M", "pid": pid,
                           "tid": tid, "args": {"name": tids[tid]}})
    return events


def ensure_monotonic(events: List[dict], step_us: float = 1e-3) -> List[dict]:
    """Sort timed events per ``(pid, tid)`` row and force strictly
    increasing timestamps (equal or regressing ``ts`` is nudged forward
    by ``step_us``).

    For flat rows — back-to-back kernels, transfer engines — this is
    exactly what Perfetto's JSON importer wants; rows with *nested*
    complete events should use :func:`sort_events` instead, which
    preserves containment.  Metadata (``M``) events pass through
    untouched, ahead of the timeline.
    """
    meta = [e for e in events if e.get("ph") == "M"]
    timed = [e for e in events if e.get("ph") != "M"]
    timed.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    last: Dict[Tuple[int, int], float] = {}
    out: List[dict] = []
    for e in timed:
        row = (e["pid"], e["tid"])
        ts = e["ts"]
        floor = last.get(row)
        if floor is not None and ts <= floor:
            ts = floor + step_us
            e = dict(e, ts=ts)
        last[row] = ts
        out.append(e)
    return meta + out


def sort_events(events: List[dict]) -> List[dict]:
    """Chrome ordering for rows that may nest: per row by
    ``(ts, -dur)`` so an enclosing span precedes the spans it
    contains.  Metadata rows stay in front."""
    meta = [e for e in events if e.get("ph") == "M"]
    timed = sorted((e for e in events if e.get("ph") != "M"),
                   key=lambda e: (e["pid"], e["tid"], e["ts"],
                                  -e.get("dur", 0.0)))
    return meta + timed


# ---------------------------------------------------------------------------
# span forest → trace events
# ---------------------------------------------------------------------------

def _span_event(span: Span) -> dict:
    pid, _, tid, _ = _row(span.cat)
    return {
        "name": span.name,
        "cat": span.cat,
        "ph": "X",
        "pid": pid,
        "tid": tid,
        "ts": span.start_s * 1e6,          # microseconds
        "dur": span.duration_s * 1e6,
        "args": dict(span.attrs),
    }


def _instant(name: str, cat: str, t_s: float, attrs: dict,
             pid: int, tid: int) -> dict:
    return {"name": name, "cat": cat, "ph": "i", "s": "t",
            "pid": pid, "tid": tid, "ts": t_s * 1e6,
            "args": dict(attrs)}


def span_events(tracer: SimTracer) -> List[dict]:
    """Flatten a tracer's span forest into Chrome trace events
    (complete ``X`` events for spans, instant ``i`` events for span
    events), depth-first."""
    events: List[dict] = []
    for span in tracer.walk():
        pid, _, tid, _ = _row(span.cat)
        events.append(_span_event(span))
        for ev in span.events:
            events.append(_instant(ev.name, span.cat, ev.t_s, ev.attrs,
                                   pid, tid))
    pid, _, tid, _ = _DEFAULT_ROW
    for ev in tracer.orphan_events:
        events.append(_instant(ev.name, "orphan", ev.t_s, ev.attrs,
                               pid, tid))
    return events


def _used_rows(events: List[dict]) -> Dict[int, Tuple[str, Dict[int, str]]]:
    rows: Dict[int, Tuple[str, Dict[int, str]]] = {}
    names = {(pid, tid): (process, thread)
             for pid, process, tid, thread in _ROWS.values()}
    for e in events:
        pid, tid = e["pid"], e["tid"]
        process, thread = names.get((pid, tid), (f"pid{pid}", f"tid{tid}"))
        rows.setdefault(pid, (process, {}))[1].setdefault(tid, thread)
    return rows


def chrome_trace(tracer: SimTracer,
                 registry: Optional[MetricsRegistry] = None,
                 **meta) -> dict:
    """The full Chrome-trace document for one traced run.

    ``meta`` lands in ``otherData`` next to span/event totals; when a
    registry is given, its snapshot is embedded there too, so one file
    carries the timeline *and* the end-of-run metric state.
    """
    events = span_events(tracer)
    other = dict(sorted(meta.items()))
    other["spans"] = tracer.span_count()
    other["events"] = sum(len(s.events) for s in tracer.walk()) \
        + len(tracer.orphan_events)
    if registry is not None:
        other["metrics"] = registry.snapshot()
    return {
        "traceEvents": metadata_events(_used_rows(events))
        + sort_events(events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(path: str, tracer: SimTracer,
                       registry: Optional[MetricsRegistry] = None,
                       **meta) -> str:
    """Serialise :func:`chrome_trace` to ``path``; returns the JSON."""
    text = json.dumps(chrome_trace(tracer, registry, **meta),
                      indent=1, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text


# ---------------------------------------------------------------------------
# JSONL structured event log
# ---------------------------------------------------------------------------

def jsonl_lines(tracer: SimTracer) -> List[str]:
    """One JSON object per span and per span event, depth-first —
    the grep-able form of the same tree.  The first line is a header
    record carrying :data:`SCHEMA_VERSION` so offline loaders can
    refuse logs written by an incompatible exporter."""
    lines: List[str] = [json.dumps(
        {"type": "header", "format": "repro-trace",
         "schema_version": SCHEMA_VERSION}, sort_keys=True)]
    for span in tracer.walk():
        lines.append(json.dumps(
            {"type": "span", "sid": span.sid, "parent": span.parent_sid,
             "name": span.name, "cat": span.cat, "start_s": span.start_s,
             "end_s": span.end_s, "attrs": dict(span.attrs)},
            sort_keys=True))
        for ev in span.events:
            lines.append(json.dumps(
                {"type": "event", "span": span.sid, "name": ev.name,
                 "t_s": ev.t_s, "attrs": dict(ev.attrs)}, sort_keys=True))
    for ev in tracer.orphan_events:
        lines.append(json.dumps(
            {"type": "event", "span": None, "name": ev.name,
             "t_s": ev.t_s, "attrs": dict(ev.attrs)}, sort_keys=True))
    return lines


def write_jsonl(path: str, tracer: SimTracer) -> int:
    """Write the JSONL event log; returns the line count."""
    lines = jsonl_lines(tracer)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


# ---------------------------------------------------------------------------
# metrics snapshots
# ---------------------------------------------------------------------------

def render_metrics(registry: MetricsRegistry) -> str:
    """Plain-text snapshot (the ``--metrics`` console form)."""
    return registry.render()


def write_metrics(path: str, registry: MetricsRegistry) -> str:
    """Deterministic JSON snapshot of a registry; returns the JSON.

    The file carries ``schema_version`` next to the counter / gauge /
    histogram sections; :func:`load_metrics_snapshot` checks it.
    """
    doc = dict(registry.snapshot(), schema_version=SCHEMA_VERSION)
    text = json.dumps(doc, indent=2, sort_keys=True)
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text


def load_metrics_snapshot(path: str) -> dict:
    """Load a metrics snapshot written by :func:`write_metrics`.

    Also accepts a Chrome-trace document with an embedded snapshot
    (``otherData.metrics``).  Unknown ``schema_version`` values raise
    :class:`~repro.errors.TraceSchemaError`; files written before
    versioning (no field) load as version 1.
    """
    from ..errors import TraceSchemaError

    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(f"{path}: not valid JSON: {exc}") from exc
    if isinstance(doc, dict) and "otherData" in doc:
        doc = doc["otherData"].get("metrics")
        if doc is None:
            raise TraceSchemaError(
                f"{path}: Chrome trace has no embedded metrics snapshot")
    if not isinstance(doc, dict) or "counters" not in doc:
        raise TraceSchemaError(f"{path}: not a metrics snapshot")
    version = doc.get("schema_version", SCHEMA_VERSION)
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise TraceSchemaError(
            f"{path}: unsupported metrics schema_version {version!r} "
            f"(supported: {list(SUPPORTED_SCHEMA_VERSIONS)})")
    return doc
