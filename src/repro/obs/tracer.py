"""Simulated-time span tracer.

The paper's evidence is nvprof timelines; this is the serving stack's
equivalent.  A :class:`SimTracer` records *spans* — named, nested
intervals of simulated time read from a clock exposing ``now_s``
(usually a :class:`~repro.gpusim.timing.SimClock`) — plus point-in-time
*span events* (fault injections, sheds, admissions).  One served
request produces one coherent tree: scheduler batch → plan lookup →
advisor ranking → evalcache accesses → dispatch with its gpusim kernel
launches as leaves.

Because time is virtual and the serving loop is single-threaded,
context propagation is a plain span stack: ``tracer.span(...)`` opens
a child of whatever span is currently open.  Everything is
deterministic — same trace, same seed, same span tree, byte for byte.

Disabled observability must cost nothing on the hot path (this repo
targets a single-CPU box), so the :data:`NULL_TRACER` singleton
answers every call with shared no-op objects: no allocation, no
branching at call sites.

Full tracing of a million-request run is expensive in host time and
memory, so :class:`TraceSampler` wraps a :class:`SimTracer` and keeps
only one in every N *units* (the ``serve.batch`` span and everything
nested under it); spans outside any unit — the run root, admission
events, autoscaler actions — are always kept.  Sampling is a purely
observational change: the metrics registry still counts every request
exactly, and the simulated report is byte-identical to an untraced
run.  Call sites distinguish ``tracer.enabled`` (is this a real
tracer at all — drives span bookkeeping like hit-rate annotations)
from ``tracer.recording`` (are spans being kept *right now* — drives
expensive span synthesis like gpusim kernel leaves, and gates the
scheduler's dispatch fast path).
"""

from __future__ import annotations

from typing import Dict, List, Optional


class SpanEvent:
    """A point-in-time annotation on a span (fault strike, shed,
    admission...)."""

    __slots__ = ("name", "t_s", "attrs")

    def __init__(self, name: str, t_s: float, attrs: Dict[str, object]):
        self.name = name
        self.t_s = t_s
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanEvent({self.name!r}, t={self.t_s:.6f}s)"


class Span:
    """One named interval of simulated time, with children and events.

    Created by :meth:`SimTracer.span` and used as a context manager::

        with tracer.span("serve.batch", cat="serve", fill=3) as sp:
            sp.event("fault.transient", attempt=1)
            sp.annotate(outcome="ok")

    ``start_s``/``end_s`` are read from the tracer's clock on enter /
    exit; ``end_s`` is ``None`` while the span is open.
    """

    __slots__ = ("tracer", "name", "cat", "attrs", "sid", "parent_sid",
                 "start_s", "end_s", "children", "events")

    def __init__(self, tracer: "SimTracer", name: str, cat: str,
                 attrs: Dict[str, object]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.sid = 0                      # assigned on enter
        self.parent_sid: Optional[int] = None
        self.start_s: float = 0.0
        self.end_s: Optional[float] = None
        self.children: List["Span"] = []
        self.events: List[SpanEvent] = []

    # -- recording ---------------------------------------------------------

    def annotate(self, **attrs) -> "Span":
        """Merge attributes into the span (overwrites same keys)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, **attrs) -> None:
        """Attach a point event at the tracer clock's current time."""
        self.events.append(SpanEvent(name, self.tracer.clock.now_s, attrs))

    @property
    def duration_s(self) -> float:
        """Span length (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        self.tracer._open(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._close(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end_s is None else f"{self.duration_s:.6f}s"
        return f"Span({self.name!r}, cat={self.cat!r}, {state})"


class SimTracer:
    """Span recorder over a simulated clock.

    ``clock`` is anything with a ``now_s`` attribute; the serving
    scheduler passes its :class:`~repro.gpusim.timing.SimClock` so
    spans land on the same timeline the batcher and fault plane run
    on.  Finished top-level spans accumulate in :attr:`roots`.

    ``first_sid`` offsets span ids so several tracers can be merged
    into one export without collisions — the cluster gives each
    replica's tracer its own disjoint sid block.
    """

    enabled = True
    #: Spans opened now will actually be kept (always true for a bare
    #: SimTracer; a :class:`TraceSampler` flips it inside dropped units).
    recording = True

    def __init__(self, clock, first_sid: int = 1):
        if first_sid < 1:
            raise ValueError(f"first_sid must be >= 1, got {first_sid}")
        self.clock = clock
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._next_sid = first_sid
        #: Events recorded while no span was open (kept so nothing is
        #: silently dropped; exported as root-level instants).
        self.orphan_events: List[SpanEvent] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, cat: str = "span", **attrs) -> Span:
        """A new span, opened when entered as a context manager."""
        return Span(self, name, cat, attrs)

    def event(self, name: str, **attrs) -> None:
        """Point event on the currently open span (orphan if none)."""
        ev = SpanEvent(name, self.clock.now_s, attrs)
        if self._stack:
            self._stack[-1].events.append(ev)
        else:
            self.orphan_events.append(ev)

    def add_span(self, name: str, cat: str, start_s: float, end_s: float,
                 **attrs) -> Span:
        """Attach an already-timed span (e.g. a gpusim kernel leaf laid
        out inside a dispatch window) under the current span."""
        if end_s < start_s:
            raise ValueError(f"span ends before it starts: "
                             f"[{start_s}, {end_s}]")
        sp = Span(self, name, cat, attrs)
        sp.sid = self._next_sid
        self._next_sid += 1
        sp.start_s = start_s
        sp.end_s = end_s
        self._attach(sp)
        return sp

    # -- queries -----------------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    def span_count(self) -> int:
        """Total finished spans across all roots."""
        def count(span: Span) -> int:
            return 1 + sum(count(c) for c in span.children)
        return sum(count(r) for r in self.roots)

    def walk(self):
        """Yield every finished span depth-first, roots in order."""
        def visit(span: Span):
            yield span
            for child in span.children:
                yield from visit(child)
        for root in self.roots:
            yield from visit(root)

    def find(self, name: str) -> List[Span]:
        """All finished spans with this name, depth-first order."""
        return [s for s in self.walk() if s.name == name]

    # -- internals ---------------------------------------------------------

    def _open(self, span: Span) -> None:
        span.sid = self._next_sid
        self._next_sid += 1
        span.start_s = self.clock.now_s
        if self._stack:
            span.parent_sid = self._stack[-1].sid
        self._stack.append(span)

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(f"span {span.name!r} closed out of order")
        self._stack.pop()
        span.end_s = self.clock.now_s
        self._attach(span)

    def _attach(self, span: Span) -> None:
        if self._stack:
            span.parent_sid = self._stack[-1].sid
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)


class _NullSpan:
    """Shared do-nothing span: every method returns instantly."""

    __slots__ = ()
    name = ""
    cat = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0

    def annotate(self, **attrs) -> "_NullSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every call is a no-op on shared objects.

    Kept deliberately allocation-free so instrumentation can stay
    unconditional at call sites — ``with tracer.span(...)`` costs two
    method calls and nothing else when tracing is off.
    """

    __slots__ = ()
    enabled = False
    recording = False
    roots: List[Span] = []
    orphan_events: List[SpanEvent] = []

    def span(self, name: str, cat: str = "span", **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def add_span(self, name: str, cat: str, start_s: float, end_s: float,
                 **attrs) -> _NullSpan:
        return _NULL_SPAN

    @property
    def current(self) -> None:
        return None

    def span_count(self) -> int:
        return 0

    def walk(self):
        return iter(())

    def find(self, name: str) -> List[Span]:
        return []


#: Process-wide disabled tracer (the default everywhere).
NULL_TRACER = NullTracer()


class _GateSpan:
    """Stands in for a dropped unit's root span: records nothing, but
    suppresses the sampler for exactly the unit's dynamic extent."""

    __slots__ = ("_sampler",)
    name = ""
    cat = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0

    def __init__(self, sampler: "TraceSampler"):
        self._sampler = sampler

    def annotate(self, **attrs) -> "_GateSpan":
        return self

    def event(self, name: str, **attrs) -> None:
        pass

    def __enter__(self) -> "_GateSpan":
        self._sampler._suppressed += 1
        return self

    def __exit__(self, *exc) -> None:
        self._sampler._suppressed -= 1


class TraceSampler:
    """1-in-N unit sampling over a :class:`SimTracer`.

    A *unit* is one span tree rooted at ``unit`` (``serve.batch`` by
    default — one dynamic batch with its plan lookup, dispatch and
    kernel leaves).  The sampler keeps the first unit and every
    ``every``-th after it, deterministically by unit count (no RNG, so
    same-seed runs still produce byte-identical sampled traces), and
    suppresses everything nested inside a dropped unit.  Spans and
    events *outside* any unit are always recorded, so the run root,
    admission/shed events and fault census survive any sampling rate.

    Only the trace thins out: the metrics registry is untouched, every
    counter stays exact, and the simulated report is unchanged (the
    scheduler's byte-identity invariant).  Exports work unchanged —
    the sampler delegates the whole read API (``roots`` / ``walk`` /
    ``orphan_events`` / ``span_count`` / ``find`` / ``clock``) to the
    wrapped tracer.
    """

    enabled = True

    def __init__(self, inner: SimTracer, every: int, unit: str = "serve.batch"):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.inner = inner
        self.every = every
        self.unit = unit
        #: Units seen / units whose span tree was kept.
        self.units_total = 0
        self.units_kept = 0
        self._suppressed = 0

    # -- recording ---------------------------------------------------------

    @property
    def recording(self) -> bool:
        """False inside a dropped unit (call sites skip span synthesis
        and take the dispatch fast path there)."""
        return self._suppressed == 0

    def span(self, name: str, cat: str = "span", **attrs):
        if self._suppressed:
            return _NULL_SPAN
        if name == self.unit:
            self.units_total += 1
            if (self.units_total - 1) % self.every:
                return _GateSpan(self)
            self.units_kept += 1
        return self.inner.span(name, cat, **attrs)

    def event(self, name: str, **attrs) -> None:
        if not self._suppressed:
            self.inner.event(name, **attrs)

    def add_span(self, name: str, cat: str, start_s: float, end_s: float,
                 **attrs):
        if self._suppressed:
            return _NULL_SPAN
        return self.inner.add_span(name, cat, start_s, end_s, **attrs)

    # -- delegated read API (exports and analytics) ------------------------

    @property
    def clock(self):
        return self.inner.clock

    @property
    def roots(self) -> List[Span]:
        return self.inner.roots

    @property
    def orphan_events(self) -> List[SpanEvent]:
        return self.inner.orphan_events

    @property
    def current(self) -> Optional[Span]:
        return self.inner.current

    def span_count(self) -> int:
        return self.inner.span_count()

    def walk(self):
        return self.inner.walk()

    def find(self, name: str) -> List[Span]:
        return self.inner.find(name)

    def stats(self) -> Dict[str, int]:
        return {"units_total": self.units_total,
                "units_kept": self.units_kept,
                "every": self.every}
