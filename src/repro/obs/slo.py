"""Simulated-time SLO engine.

Declarative service-level objectives evaluated over metrics snapshots
(:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` dicts — live from
a running registry, or loaded from a saved file).  A verdict is a pure
function of ``(snapshot, rules)``: same inputs, byte-identical report,
so a failing rule can gate CI the way the calibration-regression check
does.

Rule kinds:

* ``latency_p50`` / ``latency_p95`` / ``latency_p99`` / ``latency_mean``
  / ``latency_max`` — the named statistic of the
  ``serve_latency_seconds`` histogram must not exceed ``threshold``
  (seconds);
* ``queue_wait_p99`` — same, over ``serve_queue_wait_seconds``;
* ``histogram_stat`` — the general form: ``metric`` + ``stat`` +
  ``threshold`` for any histogram the registry carries;
* ``shed_rate`` — the fraction of offered requests that never
  completed (rejections, timeouts, memory sheds, fault sheds) must not
  exceed ``threshold``;
* ``error_budget_burn`` — the same failure fraction expressed as a
  multiple of an allowed ``budget``: burn = failed_fraction / budget,
  and the rule fails when burn exceeds ``threshold`` (canonically 1.0
  = the budget is spent).

For *live* runs, :class:`SLOMonitor` polls the registry on a fixed
simulated-time cadence inside the scheduler loop (see
:class:`repro.serve.scheduler.ServerConfig`'s ``slo`` field), records
``slo.violation`` events into the trace on each ok→fail transition,
and counts them under ``slo_violations_total{rule=...}``.  Polling is
driven by the virtual clock only, so a monitored run stays exactly as
deterministic as an unmonitored one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Rule kinds that are sugar for a histogram statistic check.
_HISTOGRAM_SUGAR: Dict[str, Tuple[str, str]] = {
    "latency_p50": ("serve_latency_seconds", "p50"),
    "latency_p95": ("serve_latency_seconds", "p95"),
    "latency_p99": ("serve_latency_seconds", "p99"),
    "latency_mean": ("serve_latency_seconds", "mean"),
    "latency_max": ("serve_latency_seconds", "max"),
    "queue_wait_p99": ("serve_queue_wait_seconds", "p99"),
}

_KINDS = tuple(sorted(_HISTOGRAM_SUGAR)) + (
    "histogram_stat", "shed_rate", "error_budget_burn")

_STATS = ("count", "sum", "min", "mean", "max", "p50", "p95", "p99")


@dataclass(frozen=True)
class SLORule:
    """One declarative objective.

    ``threshold`` is the ceiling the measured value must stay at or
    under.  ``metric``/``stat`` apply to ``histogram_stat`` rules;
    ``budget`` (an allowed failure fraction, e.g. ``0.001``) applies
    to ``error_budget_burn``.
    """

    name: str
    kind: str
    threshold: float
    metric: str = ""
    stat: str = "p99"
    budget: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"rule {self.name!r}: unknown kind {self.kind!r} "
                f"(known: {', '.join(_KINDS)})")
        if self.kind == "histogram_stat":
            if not self.metric:
                raise ValueError(
                    f"rule {self.name!r}: histogram_stat needs a metric")
            if self.stat not in _STATS:
                raise ValueError(
                    f"rule {self.name!r}: unknown stat {self.stat!r} "
                    f"(known: {', '.join(_STATS)})")
        if self.kind == "error_budget_burn" and self.budget <= 0:
            raise ValueError(
                f"rule {self.name!r}: error_budget_burn needs a positive "
                f"budget (allowed failure fraction)")


def _series_total(section: Dict[str, float], name: str) -> float:
    """Sum a counter across its label sets (``name`` + ``name{...}``)."""
    return sum(v for k, v in section.items()
               if k == name or k.startswith(name + "{"))


def _failed_fraction(snapshot: dict) -> Tuple[float, float, float]:
    counters = snapshot.get("counters", {})
    offered = _series_total(counters, "serve_requests_offered_total")
    completed = _series_total(counters, "serve_requests_completed_total")
    if offered <= 0:
        return 0.0, offered, completed
    return max(0.0, 1.0 - completed / offered), offered, completed


def _histogram_stat(snapshot: dict, metric: str, stat: str) -> Optional[float]:
    summary = snapshot.get("histograms", {}).get(metric)
    if summary is None:
        return None
    return float(summary.get(stat, 0.0))


@dataclass(frozen=True)
class SLOVerdict:
    """One rule's outcome against one snapshot."""

    rule: SLORule
    value: Optional[float]    # None: the metric is absent from the snapshot
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        return {"name": self.rule.name, "kind": self.rule.kind,
                "threshold": self.rule.threshold, "value": self.value,
                "ok": self.ok, "detail": self.detail}


def evaluate_rule(rule: SLORule, snapshot: dict) -> SLOVerdict:
    """Check one rule against one metrics snapshot (pure)."""
    if rule.kind in _HISTOGRAM_SUGAR or rule.kind == "histogram_stat":
        metric, stat = _HISTOGRAM_SUGAR.get(rule.kind,
                                            (rule.metric, rule.stat))
        value = _histogram_stat(snapshot, metric, stat)
        if value is None:
            return SLOVerdict(rule, None, True,
                              f"{metric} absent from snapshot; vacuously ok")
        ok = value <= rule.threshold
        return SLOVerdict(rule, value, ok,
                          f"{metric} {stat} = {value:.6g} "
                          f"{'<=' if ok else '>'} {rule.threshold:.6g}")
    if rule.kind == "shed_rate":
        frac, offered, completed = _failed_fraction(snapshot)
        ok = frac <= rule.threshold
        return SLOVerdict(rule, frac, ok,
                          f"shed rate = {frac:.6g} "
                          f"({offered:.0f} offered, {completed:.0f} "
                          f"completed) {'<=' if ok else '>'} "
                          f"{rule.threshold:.6g}")
    # error_budget_burn
    frac, offered, completed = _failed_fraction(snapshot)
    burn = frac / rule.budget
    ok = burn <= rule.threshold
    return SLOVerdict(rule, burn, ok,
                      f"error budget burn = {burn:.6g}x "
                      f"(failure fraction {frac:.6g} over budget "
                      f"{rule.budget:.6g}) {'<=' if ok else '>'} "
                      f"{rule.threshold:.6g}")


@dataclass(frozen=True)
class SLOReport:
    """The full pass/fail verdict: every rule against one snapshot."""

    verdicts: Tuple[SLOVerdict, ...]
    source: str = "<registry>"

    @property
    def passed(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def failing(self) -> Tuple[SLOVerdict, ...]:
        return tuple(v for v in self.verdicts if not v.ok)

    def to_dict(self) -> dict:
        return {"source": self.source, "passed": self.passed,
                "rules": [v.to_dict() for v in self.verdicts]}

    def render(self) -> str:
        lines = [f"SLO check over {self.source}"]
        for v in self.verdicts:
            mark = "PASS" if v.ok else "FAIL"
            lines.append(f"  [{mark}] {v.rule.name}: {v.detail}")
        lines.append(f"verdict: {'PASS' if self.passed else 'FAIL'} "
                     f"({len(self.verdicts) - len(self.failing)}/"
                     f"{len(self.verdicts)} rules ok)")
        return "\n".join(lines)


def evaluate_slo(snapshot: dict, rules: Tuple[SLORule, ...],
                 source: str = "<registry>") -> SLOReport:
    """Evaluate every rule against one snapshot (pure function)."""
    return SLOReport(verdicts=tuple(evaluate_rule(r, snapshot)
                                    for r in rules), source=source)


# ---------------------------------------------------------------------------
# rules files
# ---------------------------------------------------------------------------

def parse_rules(doc: object) -> Tuple[SLORule, ...]:
    """Build rules from a JSON document: either a list of rule objects
    or ``{"rules": [...]}``.  Unknown keys and kinds raise
    :class:`ValueError`."""
    if isinstance(doc, dict):
        doc = doc.get("rules")
    if not isinstance(doc, list) or not doc:
        raise ValueError("rules document must be a non-empty list "
                         "(or {'rules': [...]})")
    rules = []
    fields = {"name", "kind", "threshold", "metric", "stat", "budget"}
    for i, entry in enumerate(doc):
        if not isinstance(entry, dict):
            raise ValueError(f"rule #{i}: expected an object, got "
                             f"{type(entry).__name__}")
        unknown = set(entry) - fields
        if unknown:
            raise ValueError(f"rule #{i}: unknown keys "
                             f"{sorted(unknown)}")
        missing = {"name", "kind", "threshold"} - set(entry)
        if missing:
            raise ValueError(f"rule #{i}: missing keys {sorted(missing)}")
        rules.append(SLORule(**entry))
    return tuple(rules)


def load_rules(path: str) -> Tuple[SLORule, ...]:
    """Load a JSON rules file (see :func:`parse_rules`)."""
    with open(path) as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    try:
        return parse_rules(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from exc


#: A sane default objective set for the simulated server (used by the
#: CI smoke and the docs' worked example).
DEFAULT_RULES: Tuple[SLORule, ...] = (
    SLORule(name="p99-latency", kind="latency_p99", threshold=0.25),
    SLORule(name="shed-rate", kind="shed_rate", threshold=0.05),
    SLORule(name="error-budget", kind="error_budget_burn",
            threshold=1.0, budget=0.05),
)


# ---------------------------------------------------------------------------
# live monitoring
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SLOPolicy:
    """Attach SLO monitoring to a serving run: the rules to watch and
    the simulated-time polling cadence."""

    rules: Tuple[SLORule, ...] = DEFAULT_RULES
    window_s: float = 0.05

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(
                f"window_s must be positive, got {self.window_s}")
        if not self.rules:
            raise ValueError("an SLOPolicy needs at least one rule")


class SLOMonitor:
    """Polls a live registry on a simulated-time cadence.

    Each poll evaluates the policy's rules against the registry's
    current snapshot; a rule transitioning ok→fail records an
    ``slo.violation`` event into the trace (with the measured value
    and threshold) and increments ``slo_violations_total{rule=...}``;
    fail→ok records ``slo.recovered``.  :meth:`finalize` runs one last
    evaluation and returns the end-of-run :class:`SLOReport`.

    ``snapshot_fn`` overrides *what* is evaluated: the default is the
    registry's cumulative snapshot, but a caller can supply any
    zero-argument callable returning a snapshot-shaped dict — the
    cluster's fleet monitor passes a sliding-window view so the
    autoscaler reacts to current conditions, not the whole run's
    history.  ``listener`` is called on every edge transition as
    ``listener(rule, ok_to_fail, now_s, verdict)`` — this is how the
    autoscaler consumes the ``slo.violation`` / ``slo.recovered``
    events without parsing the trace.
    """

    def __init__(self, policy: SLOPolicy, obs,
                 snapshot_fn=None, listener=None) -> None:
        self.policy = policy
        self._obs = obs
        self._snapshot_fn = (snapshot_fn if snapshot_fn is not None
                             else obs.registry.snapshot)
        self._listener = listener
        self._next_poll_s = policy.window_s
        self._in_violation: Dict[str, bool] = {
            r.name: False for r in policy.rules}
        self.polls = 0
        self.violations = 0
        self.recoveries = 0

    @property
    def next_poll_s(self) -> float:
        """Simulated time of the next due evaluation (so an external
        event loop can include polls in its event horizon)."""
        return self._next_poll_s

    @property
    def in_violation(self) -> bool:
        """Whether any rule is currently in a violation episode."""
        return any(self._in_violation.values())

    def _evaluate(self, now_s: float, emit: bool) -> SLOReport:
        report = evaluate_slo(self._snapshot_fn(), self.policy.rules)
        if not emit:
            return report
        for v in report.verdicts:
            was = self._in_violation[v.rule.name]
            if not v.ok and not was:
                self.violations += 1
                self._obs.tracer.event(
                    "slo.violation", rule=v.rule.name, kind=v.rule.kind,
                    value=v.value, threshold=v.rule.threshold, t_s=now_s)
                self._obs.registry.counter(
                    "slo_violations_total", rule=v.rule.name).inc()
                if self._listener is not None:
                    self._listener(v.rule, True, now_s, v)
            elif v.ok and was:
                self.recoveries += 1
                self._obs.tracer.event("slo.recovered", rule=v.rule.name,
                                       t_s=now_s)
                self._obs.registry.counter(
                    "slo_recoveries_total", rule=v.rule.name).inc()
                if self._listener is not None:
                    self._listener(v.rule, False, now_s, v)
            self._in_violation[v.rule.name] = not v.ok
        return report

    def poll(self, now_s: float) -> None:
        """Run every evaluation due at or before ``now_s``."""
        while now_s >= self._next_poll_s:
            self.polls += 1
            self._evaluate(self._next_poll_s, emit=True)
            self._next_poll_s += self.policy.window_s

    def finalize(self, now_s: float) -> SLOReport:
        """One closing evaluation over the finished run's snapshot."""
        return self._evaluate(now_s, emit=False)
