"""Trace analytics: critical paths, self-time, hotspot attribution.

The source paper's figures are not timelines — they are conclusions
*derived from* timelines (runtime shares per kernel group, crossover
points, transfer fractions).  This module is the same derivation step
for the repo's own traces: it consumes a span tree recorded by
:class:`~repro.obs.tracer.SimTracer` — live, or reloaded from the
JSONL event log :func:`~repro.obs.export.write_jsonl` wrote, so
analysis works offline on saved artifacts — and produces:

* the **critical path** per root span: the longest serial descent,
  each step with its self-time (the nvprof "where did the time go"
  question, answered per request instead of per process);
* **self-time vs child-time aggregates** per span kind, so scheduler
  overhead is separable from the kernel time it encloses;
* a **Fig-4-style hotspot table**: gpusim kernel leaves grouped by
  role (GEMM / im2col / FFT / transpose / ...) per implementation,
  cross-checked against the paper pipeline's canonical role taxonomy
  in :mod:`repro.core.hotspot_kernels`;
* a **fault census**: injected-fault events and the simulated time
  attributable to them (ECC replay cost, backoff, straggler drag) —
  the quantity :mod:`repro.obs.diff` uses to explain run-to-run
  regressions.

Everything here is a pure function of the trace: same JSONL in,
byte-identical report out, asserted by ``tests/obs/test_analyze.py``
and the ``trace-smoke`` CI gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TraceSchemaError
from .export import SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS
from .tracer import SimTracer

#: Span names whose attrs identify the implementation running beneath
#: them (dispatch spans); kernel leaves inherit this label.
_IMPL_ATTR = "implementation"


@dataclass
class TraceEvent:
    """A point-in-time event reloaded from a trace."""

    name: str
    t_s: float
    attrs: Dict[str, object]


@dataclass
class TraceSpan:
    """One span reloaded from (or adapted out of) a trace.

    The offline twin of :class:`repro.obs.tracer.Span`: same fields,
    no tracer or clock attached, children linked by the loader.
    """

    sid: int
    parent: Optional[int]
    name: str
    cat: str
    start_s: float
    end_s: float
    attrs: Dict[str, object]
    children: List["TraceSpan"] = field(default_factory=list)
    events: List[TraceEvent] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def self_s(self) -> float:
        """Time spent in this span but not in any child."""
        return self.duration_s - sum(c.duration_s for c in self.children)


class TraceRun:
    """A loaded span forest: the unit every analysis consumes."""

    def __init__(self, roots: List[TraceSpan],
                 orphan_events: List[TraceEvent],
                 schema_version: int = SCHEMA_VERSION,
                 source: str = "<memory>"):
        self.roots = roots
        self.orphan_events = orphan_events
        self.schema_version = schema_version
        self.source = source

    def walk(self):
        """Yield every span depth-first, roots in order."""
        def visit(span: TraceSpan):
            yield span
            for child in span.children:
                yield from visit(child)
        for root in self.roots:
            yield from visit(root)

    def find(self, name: str) -> List[TraceSpan]:
        return [s for s in self.walk() if s.name == name]

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    @property
    def duration_s(self) -> float:
        """Wall (simulated) extent of the forest."""
        if not self.roots:
            return 0.0
        return (max(r.end_s for r in self.roots)
                - min(r.start_s for r in self.roots))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"TraceRun({self.span_count()} spans, "
                f"{self.duration_s:.6f}s, source={self.source!r})")


# ---------------------------------------------------------------------------
# loading
# ---------------------------------------------------------------------------

def from_tracer(tracer: SimTracer) -> TraceRun:
    """Adapt a live tracer's span forest without re-serialising."""
    nodes: Dict[int, TraceSpan] = {}
    roots: List[TraceSpan] = []
    for span in tracer.walk():
        node = TraceSpan(sid=span.sid, parent=span.parent_sid,
                         name=span.name, cat=span.cat,
                         start_s=span.start_s,
                         end_s=span.end_s if span.end_s is not None else span.start_s,
                         attrs=dict(span.attrs),
                         events=[TraceEvent(e.name, e.t_s, dict(e.attrs))
                                 for e in span.events])
        nodes[node.sid] = node
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    orphans = [TraceEvent(e.name, e.t_s, dict(e.attrs))
               for e in tracer.orphan_events]
    return TraceRun(roots, orphans, source="<tracer>")


def parse_jsonl(lines: Sequence[str], source: str = "<memory>") -> TraceRun:
    """Rebuild a span forest from JSONL event-log lines.

    The first record may be a ``header`` carrying ``schema_version``
    (logs written before versioning are treated as version 1); an
    unknown version raises :class:`~repro.errors.TraceSchemaError`
    rather than silently misreading the log.
    """
    version = SCHEMA_VERSION
    records = []
    for i, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceSchemaError(
                f"{source}:{i + 1}: not valid JSON: {exc}") from exc
        if not isinstance(rec, dict) or "type" not in rec:
            raise TraceSchemaError(
                f"{source}:{i + 1}: record has no 'type' field")
        records.append((i + 1, rec))
    if records and records[0][1]["type"] == "header":
        header = records.pop(0)[1]
        version = header.get("schema_version")
        if version not in SUPPORTED_SCHEMA_VERSIONS:
            raise TraceSchemaError(
                f"{source}: unsupported trace schema_version {version!r} "
                f"(supported: {list(SUPPORTED_SCHEMA_VERSIONS)})")

    nodes: Dict[int, TraceSpan] = {}
    orphans: List[TraceEvent] = []
    pending_events: List[Tuple[int, int, TraceEvent]] = []
    order: List[TraceSpan] = []
    for lineno, rec in records:
        kind = rec["type"]
        if kind == "span":
            try:
                node = TraceSpan(sid=rec["sid"], parent=rec["parent"],
                                 name=rec["name"], cat=rec["cat"],
                                 start_s=rec["start_s"], end_s=rec["end_s"],
                                 attrs=dict(rec.get("attrs") or {}))
            except KeyError as exc:
                raise TraceSchemaError(
                    f"{source}:{lineno}: span record missing {exc}") from exc
            if node.sid in nodes:
                raise TraceSchemaError(
                    f"{source}:{lineno}: duplicate span sid {node.sid}")
            nodes[node.sid] = node
            order.append(node)
        elif kind == "event":
            ev = TraceEvent(rec["name"], rec["t_s"],
                            dict(rec.get("attrs") or {}))
            sid = rec.get("span")
            if sid is None:
                orphans.append(ev)
            else:
                pending_events.append((lineno, sid, ev))
        elif kind == "header":
            raise TraceSchemaError(
                f"{source}:{lineno}: header must be the first record")
        else:
            raise TraceSchemaError(
                f"{source}:{lineno}: unknown record type {kind!r}")
    roots: List[TraceSpan] = []
    for node in order:
        parent = nodes.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)
    for lineno, sid, ev in pending_events:
        span = nodes.get(sid)
        if span is None:
            raise TraceSchemaError(
                f"{source}:{lineno}: event references unknown span {sid}")
        span.events.append(ev)
    return TraceRun(roots, orphans, schema_version=version, source=source)


def load_jsonl(path: str) -> TraceRun:
    """Load a saved JSONL event log (``repro trace --out x.jsonl``)."""
    with open(path) as fh:
        return parse_jsonl(fh.readlines(), source=path)


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PathStep:
    """One hop of a critical path."""

    name: str
    cat: str
    depth: int
    duration_s: float
    self_s: float


def critical_path(root: TraceSpan) -> List[PathStep]:
    """The longest serial descent from ``root``.

    At each level the child with the largest duration is followed
    (earliest start breaks ties, deterministically), mirroring how one
    reads an nvprof timeline: start at the request, keep descending
    into whatever dominated it.
    """
    steps: List[PathStep] = []
    node: Optional[TraceSpan] = root
    depth = 0
    while node is not None:
        steps.append(PathStep(name=node.name, cat=node.cat, depth=depth,
                              duration_s=node.duration_s,
                              self_s=node.self_s))
        node = max(node.children,
                   key=lambda c: (c.duration_s, -c.start_s),
                   default=None)
        depth += 1
    return steps


# ---------------------------------------------------------------------------
# aggregates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SpanStat:
    """Per-span-kind totals across one run."""

    name: str
    cat: str
    count: int
    total_s: float
    self_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def span_aggregates(run: TraceRun) -> List[SpanStat]:
    """Self-time vs total-time per ``(name, cat)``, longest first."""
    acc: Dict[Tuple[str, str], List[float]] = {}
    for span in run.walk():
        key = (span.name, span.cat)
        row = acc.setdefault(key, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration_s
        row[2] += span.self_s
    stats = [SpanStat(name=name, cat=cat, count=int(c), total_s=t, self_s=s)
             for (name, cat), (c, t, s) in acc.items()]
    stats.sort(key=lambda st: (-st.total_s, st.name))
    return stats


# ---------------------------------------------------------------------------
# hotspot attribution (Fig. 4 over a trace)
# ---------------------------------------------------------------------------

def hotspot_table(run: TraceRun) -> Dict[str, Dict[str, float]]:
    """GPU-leaf time per implementation per kernel role.

    Walks the tree carrying the innermost ``implementation`` attribute
    (set by dispatch spans) so each gpusim leaf is attributed to the
    implementation that launched it.  Leaves outside any dispatch land
    under ``"(unattributed)"``.
    """
    table: Dict[str, Dict[str, float]] = {}

    def visit(span: TraceSpan, impl: str) -> None:
        impl = str(span.attrs.get(_IMPL_ATTR, impl))
        if span.cat == "gpu":
            role = str(span.attrs.get("role", "other"))
            roles = table.setdefault(impl, {})
            roles[role] = roles.get(role, 0.0) + span.duration_s
        for child in span.children:
            visit(child, impl)

    for root in run.roots:
        visit(root, "(unattributed)")
    return table


def hotspot_shares(table: Dict[str, Dict[str, float]]
                   ) -> Dict[str, Dict[str, float]]:
    """Per-implementation role shares (each implementation sums to 1)."""
    shares: Dict[str, Dict[str, float]] = {}
    for impl, roles in table.items():
        total = sum(roles.values())
        if total > 0:
            shares[impl] = {role: t / total for role, t in roles.items()}
    return shares


def reconcile_hotspots(table: Dict[str, Dict[str, float]]) -> dict:
    """Cross-check trace-derived roles against the paper pipeline.

    The serving trace's kernel leaves and Fig. 4's breakdown both come
    from the same kernel plans, so every role observed in a trace must
    be a member of the canonical taxonomy
    (:data:`repro.core.hotspot_kernels.CANONICAL_ROLES`); an unknown
    role means the two pipelines have drifted apart.
    """
    from ..core.hotspot_kernels import CANONICAL_ROLES

    known = set(CANONICAL_ROLES)
    unknown = sorted({role for roles in table.values()
                      for role in roles} - known)
    return {
        "taxonomy_ok": not unknown,
        "unknown_roles": unknown,
        "canonical_roles": list(CANONICAL_ROLES),
    }


# ---------------------------------------------------------------------------
# fault census
# ---------------------------------------------------------------------------

def fault_census(run: TraceRun) -> Tuple[Dict[str, int], float]:
    """Event counts by name, plus simulated seconds attributable to
    fault handling: ECC replay costs, retry backoff, and straggler
    drag (the slowdown-inflated fraction of each hit dispatch)."""
    counts: Dict[str, int] = {}
    fault_time = 0.0
    for span in run.walk():
        for ev in span.events:
            counts[ev.name] = counts.get(ev.name, 0) + 1
            if ev.name == "fault.transient":
                fault_time += float(ev.attrs.get("retry_cost_s", 0.0))
            elif ev.name == "retry.backoff":
                fault_time += float(ev.attrs.get("backoff_s", 0.0))
            elif ev.name == "fault.straggler":
                slowdown = float(ev.attrs.get("slowdown", 1.0))
                if slowdown > 1.0:
                    fault_time += span.duration_s * (1.0 - 1.0 / slowdown)
    for ev in run.orphan_events:
        counts[ev.name] = counts.get(ev.name, 0) + 1
    return counts, fault_time


# ---------------------------------------------------------------------------
# the full analysis
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceAnalysis:
    """Everything ``repro analyze`` derives from one trace."""

    source: str
    span_count: int
    duration_s: float
    aggregates: Tuple[SpanStat, ...]
    critical: Tuple[PathStep, ...]
    hotspots: Dict[str, Dict[str, float]]       # impl -> role -> seconds
    shares: Dict[str, Dict[str, float]]         # impl -> role -> fraction
    reconciliation: dict
    events: Dict[str, int]
    fault_time_s: float
    plan_lookups: Dict[str, int]                # hits / misses
    batches: Dict[str, float]                   # count / mean_batch / mean_fill

    def to_dict(self) -> dict:
        """JSON-ready, deterministically ordered form."""
        return {
            "source": self.source,
            "span_count": self.span_count,
            "duration_s": self.duration_s,
            "aggregates": [
                {"name": a.name, "cat": a.cat, "count": a.count,
                 "total_s": a.total_s, "self_s": a.self_s,
                 "mean_s": a.mean_s}
                for a in self.aggregates],
            "critical_path": [
                {"name": p.name, "cat": p.cat, "depth": p.depth,
                 "duration_s": p.duration_s, "self_s": p.self_s}
                for p in self.critical],
            "hotspots_s": {impl: dict(sorted(roles.items()))
                           for impl, roles in sorted(self.hotspots.items())},
            "hotspot_shares": {impl: dict(sorted(roles.items()))
                               for impl, roles in sorted(self.shares.items())},
            "reconciliation": self.reconciliation,
            "events": dict(sorted(self.events.items())),
            "fault_time_s": self.fault_time_s,
            "plan_lookups": dict(sorted(self.plan_lookups.items())),
            "batches": dict(sorted(self.batches.items())),
        }

    def render(self, top: int = 10) -> str:
        """Human form: aggregates table, critical path, hotspots."""
        from ..core.report import table as text_table

        lines = [f"trace: {self.source}",
                 f"spans: {self.span_count}   "
                 f"simulated duration: {self.duration_s * 1000:.3f} ms"]
        rows = [[a.name, a.cat, str(a.count),
                 f"{a.total_s * 1000:.3f}", f"{a.self_s * 1000:.3f}",
                 f"{a.mean_s * 1000:.4f}"]
                for a in self.aggregates[:top]]
        lines.append("")
        lines.append(text_table(
            ["span", "cat", "count", "total (ms)", "self (ms)", "mean (ms)"],
            rows, title=f"span aggregates (top {min(top, len(self.aggregates))})"))
        lines.append("")
        lines.append("critical path (longest serial descent):")
        for p in self.critical:
            lines.append(f"  {'  ' * p.depth}{p.name:24s} "
                         f"{p.duration_s * 1000:9.3f} ms  "
                         f"(self {p.self_s * 1000:.3f} ms)")
        if self.shares:
            lines.append("")
            lines.append("hotspot roles per implementation (Fig. 4 view):")
            for impl in sorted(self.shares):
                parts = ", ".join(
                    f"{role} {share * 100:.1f}%"
                    for role, share in sorted(self.shares[impl].items(),
                                              key=lambda kv: (-kv[1], kv[0])))
                lines.append(f"  {impl:16s} {parts}")
            if not self.reconciliation["taxonomy_ok"]:
                lines.append("  WARNING: unknown roles "
                             f"{self.reconciliation['unknown_roles']}")
        if self.plan_lookups:
            lines.append("")
            lines.append(f"plan lookups          "
                         f"{self.plan_lookups.get('hits', 0)} hits / "
                         f"{self.plan_lookups.get('misses', 0)} misses")
        if self.batches.get("count"):
            lines.append(f"batches               {int(self.batches['count'])} "
                         f"(mean size {self.batches['mean_batch']:.2f}, "
                         f"mean fill {self.batches['mean_fill']:.2f})")
        if self.events:
            lines.append("")
            lines.append("events                " + " ".join(
                f"{name}:{count}"
                for name, count in sorted(self.events.items())))
        if self.fault_time_s:
            lines.append(f"fault-attributed time {self.fault_time_s * 1000:.3f} ms")
        return "\n".join(lines)


def analyze_run(run: TraceRun) -> TraceAnalysis:
    """Derive the full analysis from one loaded trace."""
    table = hotspot_table(run)
    events, fault_time = fault_census(run)
    plans = run.find("serve.plan")
    hits = sum(1 for p in plans if p.attrs.get("hit"))
    batch_spans = run.find("serve.batch")
    batch_sizes = [float(b.attrs.get("batch", 0)) for b in batch_spans]
    batch_fills = [float(b.attrs.get("fill", 0)) for b in batch_spans]
    longest_root = max(run.roots, key=lambda r: (r.duration_s, -r.start_s),
                       default=None)
    return TraceAnalysis(
        source=run.source,
        span_count=run.span_count(),
        duration_s=run.duration_s,
        aggregates=tuple(span_aggregates(run)),
        critical=tuple(critical_path(longest_root))
        if longest_root is not None else (),
        hotspots=table,
        shares=hotspot_shares(table),
        reconciliation=reconcile_hotspots(table),
        events=events,
        fault_time_s=fault_time,
        plan_lookups={"hits": hits, "misses": len(plans) - hits}
        if plans else {},
        batches={"count": float(len(batch_spans)),
                 "mean_batch": (sum(batch_sizes) / len(batch_sizes)
                                if batch_sizes else 0.0),
                 "mean_fill": (sum(batch_fills) / len(batch_fills)
                               if batch_fills else 0.0)},
    )
