"""Windowed telemetry rollups over the live metrics registry.

The paper's figures are *post-hoc* attributions of GPU time; the obs
plane so far (tracer, analyzer, SLO engine) keeps that shape — it
answers questions about a *finished* run.  :class:`Rollups` is the
continuous counterpart: a time-series pipeline that folds the metrics
registry and the completion stream into fixed-width windows of
simulated time, so a fleet run can be watched (and alerted on, and
flight-recorded) *while it happens*.

Design constraints, in order:

1. **Never perturb the simulation.**  Rollups take no clock, add no
   event horizons and write nothing into the registries they read.
   The serving/cluster loops call :meth:`Rollups.poll` at times they
   were stopping anyway; window boundaries are exact regardless,
   because attribution is by *virtual* time, not poll time:

   * completions are bucketed by their ``finish_s`` (pushed at
     dispatch time, which always precedes the window flush);
   * counter deltas are folded when a poll first lands in a *new*
     window — at that moment every unfolded increment happened inside
     the previous window (the loops are event-driven: nothing ticks
     between stops), so the delta belongs to it exactly.

   A run with rollups enabled therefore produces a byte-identical
   report to one without.

2. **Exact under trace sampling.**  Every serving-plane counter
   (offered / completed / shed / rejected / plan-cache traffic) and
   every latency percentile is fed from the registry and the
   completion stream, which ``--trace-sample`` never thins.  What may
   legitimately differ between sampling rates is anything keyed to
   the *dispatch path taken*: sampled-out batches ride the memoized
   fast path, which replays timings without touching the evalcache or
   launching kernels, so the engine-plane counters (``evalcache_*``,
   ``gpusim_*``) and the dispatch-memo probe follow the actual mix of
   paths — as they should (the report stays byte-identical either
   way).

3. **Byte-deterministic exports.**  The JSONL window log and the
   OpenMetrics-style text render are sorted-key serialisations of the
   window documents; two same-seed runs write identical bytes.

Sources are attached by the wiring layer (``Server`` for a single
scheduler, ``cluster.telemetry.FleetTelemetry`` for a fleet):

* :meth:`add_source` — a :class:`~repro.obs.metrics.MetricsRegistry`
  whose counter deltas land in each window's ``counters`` section;
* :meth:`add_probe` — a callable returning cumulative numeric stats
  (plan-cache, dispatch-memo, evalcache hit/miss counts), windowed by
  delta like counters;
* :meth:`add_state_probe` — a callable returning a point-in-time
  state map (replica health states), recorded as-of each flush;
* :meth:`observe_completion` — one served request with its tenant /
  shape / device / replica labels, aggregated into per-dimension
  latency summaries (p50/p95/p99 via :func:`~repro.obs.hist.summarize`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .hist import summarize
from .metrics import MetricsRegistry

#: Version stamped into window-log headers (and checked on load).
TELEMETRY_SCHEMA_VERSION = 1

#: Header ``format`` field of a window log.
WINDOW_LOG_FORMAT = "repro-telemetry"


def shape_label(key: Tuple[int, ...]) -> str:
    """Canonical rollup label of one request shape.

    Mirrors :func:`repro.core.evalcache.config_key` minus the batch
    dimension (a serving shape is batch-free until the batcher forms
    one): ``i224.f64.k3.s1.c3.p1``.
    """
    i, f, k, s, c, p = key
    return f"i{i}.f{f}.k{k}.s{s}.c{c}.p{p}"


@dataclass(frozen=True)
class TelemetryConfig:
    """Switchboard for the live-telemetry plane.

    ``None`` anywhere a config accepts one of these means *off* — the
    default everywhere, preserving byte-identical artifacts for
    existing runs.
    """

    #: Rollup window width in simulated seconds.
    window_s: float = 1.0
    #: Flight-recorder ring: window snapshots retained per recorder.
    ring_windows: int = 64
    #: Flight-recorder ring: most recent spans captured per bundle.
    ring_spans: int = 256
    #: Hard cap on incident bundles per run (excess is counted, not kept).
    max_incidents: int = 32
    #: Evaluate burn-rate alert rules over the windows (cluster runs).
    alerts: bool = True
    #: Override the default alert rule set (``None`` → defaults).
    alert_rules: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.window_s <= 0:
            raise ValueError(
                f"window_s must be positive, got {self.window_s}")
        for field in ("ring_windows", "ring_spans", "max_incidents"):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1, "
                                 f"got {getattr(self, field)}")


class Rollups:
    """Fixed-width windowed aggregation of a live run.

    Driven entirely by :meth:`poll` / :meth:`finalize` calls from the
    owning loop; finished windows accumulate in :attr:`windows` (plain
    dicts, the unit of export) and fan out to :meth:`on_window`
    listeners — the alert manager and flight recorders subscribe there.
    """

    def __init__(self, window_s: float = 1.0):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = window_s
        self.windows: List[dict] = []
        self.completions_observed = 0
        self._listeners: List[Callable[[dict], None]] = []
        # (name, registry, device) + last counter snapshot per source.
        self._sources: List[Tuple[str, MetricsRegistry, Optional[str]]] = []
        self._snapshots: Dict[str, Dict[str, float]] = {}
        # (name, fn, device) + last value snapshot per probe.
        self._probes: List[Tuple[str, Callable[[], Dict[str, float]],
                                 Optional[str]]] = []
        self._probe_snapshots: Dict[str, Dict[str, float]] = {}
        self._state_probes: List[Tuple[str, Callable[[], dict]]] = []
        # wi -> source -> series -> delta  (counter folds awaiting flush)
        self._pending_counters: Dict[int, Dict[str, Dict[str, float]]] = {}
        self._pending_probes: Dict[int, Dict[str, Dict[str, float]]] = {}
        # wi -> dimension -> label -> [latency_s, ...]
        self._pending_lat: Dict[int, Dict[str, Dict[str, List[float]]]] = {}
        self._pending_wait: Dict[int, List[float]] = {}
        self._next_index = 0          # next window index to flush
        self._fold_wi: Optional[int] = None   # window of unfolded ticks

    # -- wiring ------------------------------------------------------------

    def add_source(self, name: str, registry: MetricsRegistry,
                   device: Optional[str] = None) -> None:
        """Attach a registry; deltas accrue from this point on."""
        self._sources.append((name, registry, device))
        self._snapshots[name] = dict(registry.snapshot()["counters"])

    def add_probe(self, name: str, fn: Callable[[], Dict[str, float]],
                  device: Optional[str] = None) -> None:
        """Attach a cumulative host-side stats callable (hit/miss
        counts); windowed by delta exactly like registry counters."""
        self._probes.append((name, fn, device))
        self._probe_snapshots[name] = dict(fn())

    def add_state_probe(self, name: str, fn: Callable[[], dict]) -> None:
        """Attach a point-in-time state callable, recorded per window."""
        self._state_probes.append((name, fn))

    def on_window(self, fn: Callable[[dict], None]) -> None:
        """Call ``fn(window_doc)`` as each window flushes, in
        subscription order (the alert manager subscribes first so its
        verdict lands inside the document other listeners see)."""
        self._listeners.append(fn)

    # -- ingestion ---------------------------------------------------------

    def window_index(self, t_s: float) -> int:
        return int(t_s // self.window_s)

    def observe_completion(self, completion, tenant: Optional[str] = None,
                           shape: Optional[str] = None,
                           device: Optional[str] = None,
                           replica: Optional[str] = None) -> None:
        """Bucket one completion into the window of its ``finish_s``."""
        wi = self.window_index(completion.finish_s)
        lat = self._pending_lat.setdefault(
            wi, {"tenant": {}, "shape": {}, "device": {}, "replica": {}})
        latency = completion.latency_s
        if tenant is None:
            tenant = completion.request.model
        if shape is None:
            shape = shape_label(completion.request.key)
        lat["tenant"].setdefault(tenant, []).append(latency)
        lat["shape"].setdefault(shape, []).append(latency)
        if device is not None:
            lat["device"].setdefault(device, []).append(latency)
        if replica is not None:
            lat["replica"].setdefault(replica, []).append(latency)
        self._pending_wait.setdefault(wi, []).append(completion.queue_wait_s)
        self.completions_observed += 1

    # -- the poll/fold/flush machinery -------------------------------------

    def poll(self, now_s: float) -> None:
        """Fold and flush everything owed as of simulated time ``now_s``.

        Call after all processing for ``now_s`` in the owning loop (so
        the registry reflects every event at ``now_s`` no later than
        the *next* poll, which is when its window can first flush).
        """
        wi_now = self.window_index(now_s)
        if self._fold_wi is None:
            self._fold_wi = wi_now
        elif wi_now > self._fold_wi:
            self._fold(self._fold_wi)
            self._fold_wi = wi_now
        while self._next_index < wi_now:
            self._flush(self._next_index, partial=False)
            self._next_index += 1

    def finalize(self, now_s: float) -> None:
        """Flush through the window containing ``now_s`` (the last one
        marked ``partial`` when the run ended inside it)."""
        wi_now = self.window_index(now_s)
        if self._fold_wi is not None:
            self._fold(self._fold_wi)
            self._fold_wi = None
        while self._next_index < wi_now:
            self._flush(self._next_index, partial=False)
            self._next_index += 1
        end_s = (wi_now + 1) * self.window_s
        if now_s > wi_now * self.window_s or self._has_pending(wi_now):
            self._flush(wi_now, partial=now_s < end_s, end_s=now_s)
            self._next_index = wi_now + 1

    def _has_pending(self, wi: int) -> bool:
        return (wi in self._pending_counters or wi in self._pending_probes
                or wi in self._pending_lat)

    def _fold(self, wi: int) -> None:
        """Attribute all registry/probe deltas since the last fold to
        window ``wi`` (every unfolded tick happened inside it)."""
        for name, registry, _device in self._sources:
            current = registry.snapshot()["counters"]
            last = self._snapshots[name]
            delta = {series: value - last.get(series, 0.0)
                     for series, value in current.items()
                     if value != last.get(series, 0.0)}
            if delta:
                self._pending_counters.setdefault(wi, {})[name] = delta
            self._snapshots[name] = dict(current)
        for name, fn, _device in self._probes:
            current = dict(fn())
            last = self._probe_snapshots[name]
            delta = {key: value - last.get(key, 0.0)
                     for key, value in current.items()
                     if isinstance(value, (int, float))
                     and value != last.get(key, 0.0)}
            if delta:
                self._pending_probes.setdefault(wi, {})[name] = delta
            self._probe_snapshots[name] = current

    def _flush(self, wi: int, partial: bool,
               end_s: Optional[float] = None) -> None:
        lat = self._pending_lat.pop(wi, {})
        latency = {}
        completed = 0
        for dim in sorted(lat):
            buckets = lat[dim]
            if not buckets:
                continue
            latency[dim] = {label: summarize(values)
                            for label, values in sorted(buckets.items())}
            if dim == "tenant":
                completed = sum(len(v) for v in buckets.values())
        span_s = (end_s if end_s is not None
                  else (wi + 1) * self.window_s) - wi * self.window_s
        doc = {
            "type": "window",
            "index": wi,
            "start_s": wi * self.window_s,
            "end_s": end_s if end_s is not None else (wi + 1) * self.window_s,
            "completed": completed,
            "qps": completed / span_s if span_s > 0 else 0.0,
            "counters": self._pending_counters.pop(wi, {}),
            "probes": self._pending_probes.pop(wi, {}),
            "latency": latency,
        }
        waits = self._pending_wait.pop(wi, None)
        if waits:
            doc["queue_wait"] = summarize(waits)
        state = {name: fn() for name, fn in self._state_probes}
        if state:
            doc["state"] = state
        if partial:
            doc["partial"] = True
        self.windows.append(doc)
        for fn in self._listeners:
            fn(doc)

    # -- queries -----------------------------------------------------------

    def device_of(self, source: str) -> Optional[str]:
        """Device label of a source/probe (``name@digest``), if any."""
        for name, _registry, device in self._sources:
            if name == source:
                return device
        for name, _fn, device in self._probes:
            if name == source:
                return device
        return None

    def counter_total(self, metric: str,
                      windows: Optional[List[dict]] = None) -> float:
        """Sum of one counter's deltas (any label set, any source)
        across ``windows`` (default: all flushed windows)."""
        total = 0.0
        for doc in self.windows if windows is None else windows:
            total += window_counter_total(doc, metric)
        return total

    def report(self) -> dict:
        """Summary for embedding in run reports."""
        return {
            "window_s": self.window_s,
            "windows": len(self.windows),
            "completions_observed": self.completions_observed,
            "sources": sorted(name for name, _r, _d in self._sources),
        }


def _series_base(series: str) -> str:
    return series.split("{", 1)[0]


def window_counter_total(doc: dict, metric: str) -> float:
    """Sum of one counter's deltas in one window document, across all
    sources and label sets."""
    total = 0.0
    for deltas in doc.get("counters", {}).values():
        for series, value in deltas.items():
            if _series_base(series) == metric:
                total += value
    return total


# ---------------------------------------------------------------------------
# exports
# ---------------------------------------------------------------------------

def window_log_header(window_s: float) -> str:
    return json.dumps({"type": "header", "format": WINDOW_LOG_FORMAT,
                       "schema_version": TELEMETRY_SCHEMA_VERSION,
                       "window_s": window_s}, sort_keys=True)


def window_log_lines(rollups: Rollups) -> List[str]:
    """The JSONL window log: a header record then one sorted-key JSON
    object per window — the replayable form of the whole run's
    telemetry (the dashboard renders from it)."""
    lines = [window_log_header(rollups.window_s)]
    lines.extend(json.dumps(doc, sort_keys=True) for doc in rollups.windows)
    return lines


def write_window_log(path: str, rollups: Rollups) -> int:
    """Write the JSONL window log; returns the line count."""
    lines = window_log_lines(rollups)
    with open(path, "w") as fh:
        for line in lines:
            fh.write(line + "\n")
    return len(lines)


def load_window_log(path: str) -> Tuple[dict, List[dict]]:
    """Load ``(header, windows)`` from a window log written by
    :func:`write_window_log`; refuses foreign or future formats."""
    from ..errors import TraceSchemaError

    with open(path) as fh:
        raw = [line for line in (l.strip() for l in fh) if line]
    if not raw:
        raise TraceSchemaError(f"{path}: empty window log")
    try:
        header = json.loads(raw[0])
        docs = [json.loads(line) for line in raw[1:]]
    except json.JSONDecodeError as exc:
        raise TraceSchemaError(f"{path}: not valid JSONL: {exc}") from exc
    if header.get("format") != WINDOW_LOG_FORMAT:
        raise TraceSchemaError(
            f"{path}: not a telemetry window log "
            f"(format={header.get('format')!r})")
    version = header.get("schema_version")
    if version != TELEMETRY_SCHEMA_VERSION:
        raise TraceSchemaError(
            f"{path}: unsupported window-log schema_version {version!r}")
    return header, [d for d in docs if d.get("type") == "window"]


def _inject_label(series: str, key: str, value: str) -> str:
    if "{" in series:
        name, rest = series.split("{", 1)
        # A series that already carries this label key (e.g. the
        # device-labeled evalcache counters) keeps its own value.
        if any(part.startswith(f'{key}="')
               for part in rest[:-1].split(",")):
            return series
        return f'{name}{{{key}="{value}",{rest}'
    return f'{series}{{{key}="{value}"}}'


def render_openmetrics(rollups: Rollups) -> str:
    """OpenMetrics-style text: cumulative counters per source (with a
    ``source`` label injected) plus the latest window's latency
    summaries as ``repro_latency_seconds`` gauges.  Deterministic:
    same rollup state, same bytes, ``# EOF`` terminated."""
    lines: List[str] = []
    for name in sorted(rollups._snapshots):
        device = rollups.device_of(name)
        for series in sorted(rollups._snapshots[name]):
            value = rollups._snapshots[name][series]
            labeled = _inject_label(series, "source", name)
            if device is not None:
                labeled = _inject_label(labeled, "device", device)
            lines.append(f"{labeled} {value:g}")
    if rollups.windows:
        last = rollups.windows[-1]
        lines.append(f'repro_window_index {last["index"]}')
        lines.append(f'repro_window_qps {last["qps"]:g}')
        for dim in sorted(last.get("latency", {})):
            for label in sorted(last["latency"][dim]):
                summary = last["latency"][dim][label]
                for stat in ("p50", "p95", "p99"):
                    lines.append(
                        f'repro_latency_seconds{{dim="{dim}",'
                        f'key="{label}",stat="{stat}"}} '
                        f'{summary[stat]:g}')
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(path: str, rollups: Rollups) -> str:
    """Serialise :func:`render_openmetrics` to ``path``."""
    text = render_openmetrics(rollups)
    with open(path, "w") as fh:
        fh.write(text)
    return text
