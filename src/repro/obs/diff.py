"""Trace diff: run-to-run regression attribution.

"Run B is slower than run A" is the question every entry in this
repo's benchmark history answers by hand; this module answers it from
the traces.  Two runs are aligned by **span path** — the chain of span
names from the root down, with dispatch spans labelled by the
implementation they ran (``serve.run/serve.batch/serve.dispatch[cudnn]``)
— which is stable across same-workload runs regardless of absolute
span ids or timestamps.  Per aligned path the diff reports count,
total-time and self-time deltas; on top of the raw deltas it ranks
*explanations*:

* **fault_injections** — fault events present in the candidate but
  not the baseline, weighted by the simulated time they cost (ECC
  replay + backoff + straggler drag, from
  :func:`repro.obs.analyze.fault_census`);
* **plan_cache_misses** — extra advisor rankings the candidate paid
  for, weighted by the advisor-span time delta;
* **batch_size_shift** — the batcher formed differently sized batches
  (a policy or load change), weighted by the dispatch-time delta;
* **kernel_time_drift** — per-role GPU time moved without a matching
  launch-count change (a timing-model or calibration drift);
* **workload_change** — the two traces do not even serve the same
  offered load (deltas are then descriptive, not regressions).

Everything is a pure function of the two traces: same pair in,
byte-identical report out.  A same-seed pair produces zero deltas and
zero findings — the ``repro analyze --baseline`` CI check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .analyze import TraceRun, TraceSpan, fault_census

#: Relative change below which a quantity counts as unchanged (floats
#: from two identical runs compare exactly; this guards real pairs).
_REL_EPS = 1e-9


@dataclass(frozen=True)
class PathStat:
    """Aggregate of one span path in one run."""

    count: int
    total_s: float
    self_s: float


@dataclass(frozen=True)
class RunProfile:
    """The alignable summary of one run (input to :func:`diff_runs`)."""

    source: str
    duration_s: float
    paths: Dict[str, PathStat]
    events: Dict[str, int]
    fault_time_s: float
    plan_hits: int
    plan_misses: int
    batch_count: int
    mean_batch: float
    mean_fill: float
    arrivals: int
    gpu_roles: Dict[str, Tuple[int, float]]   # "impl/role" -> (count, secs)


def _path_label(span: TraceSpan) -> str:
    impl = span.attrs.get("implementation")
    return f"{span.name}[{impl}]" if impl is not None else span.name


def profile_run(run: TraceRun) -> RunProfile:
    """Summarise one loaded trace into its alignable form."""
    paths: Dict[str, List[float]] = {}
    gpu_roles: Dict[str, List[float]] = {}

    def visit(span: TraceSpan, prefix: str, impl: str) -> None:
        impl = str(span.attrs.get("implementation", impl))
        path = f"{prefix}/{_path_label(span)}" if prefix else _path_label(span)
        row = paths.setdefault(path, [0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration_s
        row[2] += span.self_s
        if span.cat == "gpu":
            role = str(span.attrs.get("role", "other"))
            grow = gpu_roles.setdefault(f"{impl}/{role}", [0, 0.0])
            grow[0] += 1
            grow[1] += span.duration_s
        for child in span.children:
            visit(child, path, impl)

    for root in run.roots:
        visit(root, "", "(unattributed)")

    events, fault_time = fault_census(run)
    plans = run.find("serve.plan")
    hits = sum(1 for p in plans if p.attrs.get("hit"))
    batches = run.find("serve.batch")
    sizes = [float(b.attrs.get("batch", 0)) for b in batches]
    fills = [float(b.attrs.get("fill", 0)) for b in batches]
    arrivals = sum(int(r.attrs.get("arrivals", 0)) for r in run.roots)
    return RunProfile(
        source=run.source,
        duration_s=run.duration_s,
        paths={k: PathStat(int(c), t, s)
               for k, (c, t, s) in paths.items()},
        events=events,
        fault_time_s=fault_time,
        plan_hits=hits,
        plan_misses=len(plans) - hits,
        batch_count=len(batches),
        mean_batch=sum(sizes) / len(sizes) if sizes else 0.0,
        mean_fill=sum(fills) / len(fills) if fills else 0.0,
        arrivals=arrivals,
        gpu_roles={k: (int(c), t) for k, (c, t) in gpu_roles.items()},
    )


@dataclass(frozen=True)
class PathDelta:
    """One aligned span path's change, baseline → candidate."""

    path: str
    base_count: int
    cand_count: int
    base_total_s: float
    cand_total_s: float
    base_self_s: float
    cand_self_s: float

    @property
    def d_count(self) -> int:
        return self.cand_count - self.base_count

    @property
    def d_total_s(self) -> float:
        return self.cand_total_s - self.base_total_s

    @property
    def d_self_s(self) -> float:
        return self.cand_self_s - self.base_self_s


@dataclass(frozen=True)
class Finding:
    """One ranked explanation of where the regression came from."""

    cause: str
    detail: str
    magnitude_s: float
    evidence: Dict[str, object]


def _changed(base: float, cand: float) -> bool:
    scale = max(abs(base), abs(cand))
    return abs(cand - base) > _REL_EPS * max(scale, 1.0)


def _path_deltas(base: RunProfile, cand: RunProfile) -> List[PathDelta]:
    zero = PathStat(0, 0.0, 0.0)
    deltas = []
    for path in sorted(set(base.paths) | set(cand.paths)):
        b = base.paths.get(path, zero)
        c = cand.paths.get(path, zero)
        if b.count == c.count and not _changed(b.total_s, c.total_s) \
                and not _changed(b.self_s, c.self_s):
            continue
        deltas.append(PathDelta(path=path,
                                base_count=b.count, cand_count=c.count,
                                base_total_s=b.total_s,
                                cand_total_s=c.total_s,
                                base_self_s=b.self_s, cand_self_s=c.self_s))
    deltas.sort(key=lambda d: (-abs(d.d_total_s), d.path))
    return deltas


def _findings(base: RunProfile, cand: RunProfile) -> List[Finding]:
    findings: List[Finding] = []

    fault_events = {name: count for name, count in cand.events.items()
                    if name.startswith(("fault.", "retry.", "breaker.",
                                        "shed.fault"))}
    base_faults = {name: count for name, count in base.events.items()
                   if name in fault_events or name.startswith("fault.")}
    d_fault_time = cand.fault_time_s - base.fault_time_s
    if fault_events != base_faults or _changed(base.fault_time_s,
                                               cand.fault_time_s):
        findings.append(Finding(
            cause="fault_injections",
            detail=(f"fault handling cost moved by "
                    f"{d_fault_time * 1000:+.3f} ms "
                    f"(events: {dict(sorted(fault_events.items()))})"),
            magnitude_s=abs(d_fault_time),
            evidence={"baseline_events": dict(sorted(base_faults.items())),
                      "candidate_events": dict(sorted(fault_events.items())),
                      "d_fault_time_s": d_fault_time}))

    d_misses = cand.plan_misses - base.plan_misses
    if d_misses:
        rank_base = sum(st.total_s for p, st in base.paths.items()
                        if p.endswith("advisor.rank"))
        rank_cand = sum(st.total_s for p, st in cand.paths.items()
                        if p.endswith("advisor.rank"))
        findings.append(Finding(
            cause="plan_cache_misses",
            detail=(f"{d_misses:+d} plan-cache misses "
                    f"({base.plan_misses} -> {cand.plan_misses}); "
                    f"advisor ranking time {rank_base * 1000:.3f} -> "
                    f"{rank_cand * 1000:.3f} ms"),
            magnitude_s=abs(rank_cand - rank_base),
            evidence={"d_misses": d_misses,
                      "d_rank_time_s": rank_cand - rank_base}))

    if base.batch_count and cand.batch_count and \
            (_changed(base.mean_batch, cand.mean_batch)
             or _changed(base.mean_fill, cand.mean_fill)):
        dispatch_base = sum(st.total_s for p, st in base.paths.items()
                            if "serve.dispatch" in p)
        dispatch_cand = sum(st.total_s for p, st in cand.paths.items()
                            if "serve.dispatch" in p)
        # Net out fault-handling time so a chaos run's retry/straggler
        # cost is not billed twice (it has its own finding above).
        shift_s = (dispatch_cand - dispatch_base) \
            - (cand.fault_time_s - base.fault_time_s)
        findings.append(Finding(
            cause="batch_size_shift",
            detail=(f"mean batch {base.mean_batch:.2f} -> "
                    f"{cand.mean_batch:.2f}, mean fill "
                    f"{base.mean_fill:.2f} -> {cand.mean_fill:.2f} "
                    f"over {base.batch_count} -> {cand.batch_count} batches"),
            magnitude_s=abs(shift_s),
            evidence={"d_mean_batch": cand.mean_batch - base.mean_batch,
                      "d_mean_fill": cand.mean_fill - base.mean_fill,
                      "d_batches": cand.batch_count - base.batch_count}))

    drift_s = 0.0
    drift_roles: Dict[str, float] = {}
    for key in sorted(set(base.gpu_roles) & set(cand.gpu_roles)):
        (bc, bt), (cc, ct) = base.gpu_roles[key], cand.gpu_roles[key]
        if bc == cc and _changed(bt, ct):
            drift_roles[key] = ct - bt
            drift_s += abs(ct - bt)
    if drift_roles:
        worst = max(drift_roles, key=lambda k: (abs(drift_roles[k]), k))
        findings.append(Finding(
            cause="kernel_time_drift",
            detail=(f"{len(drift_roles)} kernel role(s) changed runtime at "
                    f"equal launch counts; largest: {worst} "
                    f"{drift_roles[worst] * 1000:+.3f} ms"),
            magnitude_s=drift_s,
            evidence={"d_role_time_s": dict(sorted(drift_roles.items()))}))

    if base.arrivals != cand.arrivals:
        findings.append(Finding(
            cause="workload_change",
            detail=(f"offered load differs: {base.arrivals} -> "
                    f"{cand.arrivals} arrivals — the runs are not "
                    f"like-for-like"),
            magnitude_s=abs(cand.duration_s - base.duration_s),
            evidence={"d_arrivals": cand.arrivals - base.arrivals}))

    findings.sort(key=lambda f: (-f.magnitude_s, f.cause))
    return findings


@dataclass(frozen=True)
class TraceDiff:
    """The ranked "what got slower and why" report."""

    baseline: str
    candidate: str
    d_duration_s: float
    base_duration_s: float
    cand_duration_s: float
    deltas: Tuple[PathDelta, ...]
    findings: Tuple[Finding, ...]

    @property
    def identical(self) -> bool:
        """True when the runs align perfectly: no deltas, no findings."""
        return not self.deltas and not self.findings \
            and not _changed(self.base_duration_s, self.cand_duration_s)

    def to_dict(self, top: int = 20) -> dict:
        return {
            "baseline": self.baseline,
            "candidate": self.candidate,
            "identical": self.identical,
            "duration_s": {"baseline": self.base_duration_s,
                           "candidate": self.cand_duration_s,
                           "delta": self.d_duration_s},
            "deltas": [
                {"path": d.path,
                 "count": {"baseline": d.base_count,
                           "candidate": d.cand_count,
                           "delta": d.d_count},
                 "total_s": {"baseline": d.base_total_s,
                             "candidate": d.cand_total_s,
                             "delta": d.d_total_s},
                 "self_s": {"baseline": d.base_self_s,
                            "candidate": d.cand_self_s,
                            "delta": d.d_self_s}}
                for d in self.deltas[:top]],
            "delta_count": len(self.deltas),
            "findings": [
                {"cause": f.cause, "detail": f.detail,
                 "magnitude_s": f.magnitude_s, "evidence": f.evidence}
                for f in self.findings],
        }

    def render(self, top: int = 10) -> str:
        from ..core.report import table as text_table

        lines = [f"baseline:  {self.baseline}",
                 f"candidate: {self.candidate}",
                 f"simulated duration {self.base_duration_s * 1000:.3f} -> "
                 f"{self.cand_duration_s * 1000:.3f} ms "
                 f"({self.d_duration_s * 1000:+.3f} ms)"]
        if self.identical:
            lines.append("")
            lines.append("runs are identical: zero deltas, zero findings")
            return "\n".join(lines)
        if self.deltas:
            rows = [[d.path if len(d.path) <= 60 else "..." + d.path[-57:],
                     f"{d.d_count:+d}",
                     f"{d.d_total_s * 1000:+.3f}",
                     f"{d.d_self_s * 1000:+.3f}"]
                    for d in self.deltas[:top]]
            lines.append("")
            lines.append(text_table(
                ["span path", "Δcount", "Δtotal (ms)", "Δself (ms)"], rows,
                title=f"top path deltas ({len(self.deltas)} changed)"))
        if self.findings:
            lines.append("")
            lines.append("what got slower and why (ranked):")
            for i, f in enumerate(self.findings, 1):
                lines.append(f"  {i}. [{f.cause}] {f.detail} "
                             f"(~{f.magnitude_s * 1000:.3f} ms)")
        else:
            lines.append("")
            lines.append("no attributable cause found "
                         "(deltas below attribution thresholds)")
        return "\n".join(lines)


def diff_runs(baseline: RunProfile, candidate: RunProfile) -> TraceDiff:
    """Align two run profiles and attribute their differences."""
    return TraceDiff(
        baseline=baseline.source,
        candidate=candidate.source,
        d_duration_s=candidate.duration_s - baseline.duration_s,
        base_duration_s=baseline.duration_s,
        cand_duration_s=candidate.duration_s,
        deltas=tuple(_path_deltas(baseline, candidate)),
        findings=tuple(_findings(baseline, candidate)),
    )


def diff_traces(baseline: TraceRun, candidate: TraceRun) -> TraceDiff:
    """Convenience: profile and diff two loaded traces."""
    return diff_runs(profile_run(baseline), profile_run(candidate))
