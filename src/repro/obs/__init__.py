"""repro.obs — the unified observability plane.

The source paper is itself an observability exercise: its figures come
from nvprof kernel timelines and per-kernel counters.  This package
gives the grown-up stack the same power over *simulated* runs, across
every layer at once:

* :mod:`repro.obs.tracer` — simulated-time span tracing with nested
  spans, span events and a zero-cost :data:`NULL_TRACER`; one served
  request becomes one span tree from admission to its gpusim kernel
  leaves, with fault injections annotated on the affected spans;
* :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, histograms) that serve, evalcache, faults and gpusim publish
  into; :class:`repro.serve.stats.ServingStats` is a view over it;
* :mod:`repro.obs.context` — run-scoped propagation so the advisor,
  the evaluation cache and the fault plane find the active tracer
  without signature plumbing;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON (serving rows
  and GPU rows in one timeline), a JSONL structured event log, and
  deterministic metrics snapshots;
* :mod:`repro.obs.hist` — the one shared implementation of the
  percentile / summary math.

Everything is deterministic: same seed, same trace, byte-identical
exports.  See ``docs/OBSERVABILITY.md``.
"""

from .context import NULL_OBS, Observability, get_obs, obs_session, set_obs
from .export import (chrome_trace, jsonl_lines, render_metrics, span_events,
                     write_chrome_trace, write_jsonl, write_metrics)
from .hist import percentile, summarize
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_REGISTRY, NullRegistry)
from .tracer import NULL_TRACER, NullTracer, SimTracer, Span, SpanEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "SimTracer",
    "Span",
    "SpanEvent",
    "chrome_trace",
    "get_obs",
    "jsonl_lines",
    "obs_session",
    "percentile",
    "render_metrics",
    "set_obs",
    "span_events",
    "summarize",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]
