"""repro.obs — the unified observability plane.

The source paper is itself an observability exercise: its figures come
from nvprof kernel timelines and per-kernel counters.  This package
gives the grown-up stack the same power over *simulated* runs, across
every layer at once:

* :mod:`repro.obs.tracer` — simulated-time span tracing with nested
  spans, span events and a zero-cost :data:`NULL_TRACER`; one served
  request becomes one span tree from admission to its gpusim kernel
  leaves, with fault injections annotated on the affected spans;
* :mod:`repro.obs.metrics` — a labeled metrics registry (counters,
  gauges, histograms) that serve, evalcache, faults and gpusim publish
  into; :class:`repro.serve.stats.ServingStats` is a view over it;
* :mod:`repro.obs.context` — run-scoped propagation so the advisor,
  the evaluation cache and the fault plane find the active tracer
  without signature plumbing;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON (serving rows
  and GPU rows in one timeline), a JSONL structured event log, and
  deterministic metrics snapshots;
* :mod:`repro.obs.hist` — the one shared implementation of the
  percentile / summary math;
* :mod:`repro.obs.analyze` — offline trace analytics: load a saved
  JSONL log (or a live tracer), compute critical paths, self-time
  aggregates and the Fig-4-style hotspot table per implementation;
* :mod:`repro.obs.diff` — run-to-run regression attribution: align
  two traces by span path and rank "what got slower and why";
* :mod:`repro.obs.slo` — declarative SLOs (p99 latency, shed rate,
  error-budget burn) evaluated in simulated time, live via
  :class:`~repro.obs.slo.SLOMonitor` or offline as a CI gate.

Everything is deterministic: same seed, same trace, byte-identical
exports.  See ``docs/OBSERVABILITY.md``.
"""

from .alerts import (ALERT_LOG_FORMAT, AlertManager, AlertRule,
                     DEFAULT_ALERT_RULES, alert_log_lines, write_alert_log)
from .analyze import (TraceAnalysis, TraceRun, analyze_run, critical_path,
                      from_tracer, hotspot_table, load_jsonl, parse_jsonl)
from .context import NULL_OBS, Observability, get_obs, obs_session, set_obs
from .dashboard import (render_dashboard, render_dashboard_from_log,
                        render_dashboard_live)
from .diff import TraceDiff, diff_runs, diff_traces, profile_run
from .export import (SCHEMA_VERSION, chrome_trace, jsonl_lines,
                     load_metrics_snapshot, render_metrics, span_events,
                     write_chrome_trace, write_jsonl, write_metrics)
from .hist import percentile, summarize
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_REGISTRY, NullRegistry)
from .recorder import (FlightRecorder, sampler_stats, span_records,
                       write_incident_bundle)
from .slo import (DEFAULT_RULES, SLOMonitor, SLOPolicy, SLOReport, SLORule,
                  evaluate_slo, load_rules, parse_rules)
from .timeseries import (Rollups, TELEMETRY_SCHEMA_VERSION, TelemetryConfig,
                         load_window_log, render_openmetrics, shape_label,
                         window_log_lines, write_openmetrics,
                         write_window_log)
from .tracer import NULL_TRACER, NullTracer, SimTracer, Span, SpanEvent

__all__ = [
    "ALERT_LOG_FORMAT",
    "AlertManager",
    "AlertRule",
    "Counter",
    "DEFAULT_ALERT_RULES",
    "DEFAULT_RULES",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "Rollups",
    "SCHEMA_VERSION",
    "SLOMonitor",
    "SLOPolicy",
    "SLOReport",
    "SLORule",
    "SimTracer",
    "Span",
    "SpanEvent",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryConfig",
    "TraceAnalysis",
    "TraceDiff",
    "TraceRun",
    "alert_log_lines",
    "analyze_run",
    "chrome_trace",
    "critical_path",
    "diff_runs",
    "diff_traces",
    "evaluate_slo",
    "from_tracer",
    "get_obs",
    "hotspot_table",
    "jsonl_lines",
    "load_jsonl",
    "load_metrics_snapshot",
    "load_rules",
    "load_window_log",
    "obs_session",
    "parse_jsonl",
    "parse_rules",
    "percentile",
    "profile_run",
    "render_dashboard",
    "render_dashboard_from_log",
    "render_dashboard_live",
    "render_metrics",
    "render_openmetrics",
    "sampler_stats",
    "set_obs",
    "shape_label",
    "span_events",
    "span_records",
    "summarize",
    "window_log_lines",
    "write_alert_log",
    "write_chrome_trace",
    "write_incident_bundle",
    "write_jsonl",
    "write_metrics",
    "write_openmetrics",
    "write_window_log",
]
