"""repro — reproduction of "Performance Analysis of GPU-based
Convolutional Neural Networks" (Li et al., ICPP 2016).

Layered public API:

* :mod:`repro.gpusim` — analytic Tesla K40c device model (occupancy,
  coalescing, bank conflicts, roofline timing, allocator, PCIe,
  nvprof-style profiler);
* :mod:`repro.conv` — the three convolution strategies (direct,
  unrolling, FFT), numerically exact in NumPy;
* :mod:`repro.frameworks` — the seven benchmarked implementations
  (Caffe, Torch-cunn, Theano-CorrMM, Theano-fft, cuDNN,
  cuda-convnet2, fbfft);
* :mod:`repro.nn` — CNN layers, the four profiled models, training;
* :mod:`repro.core` — the paper's analysis harness: one module per
  figure/table, plus the implementation advisor.

Quick start::

    from repro import BASE_CONFIG, all_implementations
    for impl in all_implementations():
        if impl.supports(BASE_CONFIG):
            print(impl.paper_name, impl.time_iteration(BASE_CONFIG))
"""

from .config import (BASE_CONFIG, SWEEPS, TABLE1_CONFIGS, ConvConfig,
                     sweep_configs)
from .errors import (DeviceOOMError, ReproError, ShapeError,
                     UnsupportedConfigError)
from .frameworks import all_implementations, get_implementation
from .gpusim import K40C, DeviceSpec, Profiler
from .core.advisor import Advisor
from .core.experiments import EXPERIMENTS, run_experiment

__version__ = "1.0.0"

__all__ = [
    "BASE_CONFIG",
    "SWEEPS",
    "TABLE1_CONFIGS",
    "ConvConfig",
    "sweep_configs",
    "ReproError",
    "ShapeError",
    "UnsupportedConfigError",
    "DeviceOOMError",
    "all_implementations",
    "get_implementation",
    "K40C",
    "DeviceSpec",
    "Profiler",
    "Advisor",
    "EXPERIMENTS",
    "run_experiment",
    "__version__",
]
