"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch one type.  The more specific subclasses mirror the
failure modes the paper discusses: implementations rejecting tensor
shapes (section IV-B, "shape limitations"), the device running out of
memory (section V-B, "abnormal memory usage can lead to program crush"),
and misuse of the simulator API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ShapeError(ReproError, ValueError):
    """A tensor shape is malformed or inconsistent (e.g. kernel larger
    than the padded input, negative sizes, mismatched channel counts)."""


class UnsupportedConfigError(ReproError, ValueError):
    """A convolution implementation rejects a configuration it cannot
    run, mirroring the paper's shape limitations: cuda-convnet2 needs
    square inputs/kernels, batch % 32 == 0 and filters % 16 == 0; the
    FFT implementations only support stride 1."""

    def __init__(self, implementation: str, reason: str):
        self.implementation = implementation
        self.reason = reason
        super().__init__(f"{implementation}: unsupported configuration: {reason}")


class DeviceOOMError(ReproError, MemoryError):
    """The simulated device ran out of global memory.

    Carries the requested size and the allocator state at failure so
    the memory-comparison harness can report *why* a configuration is
    infeasible (paper Fig. 5 observes fbfft exceeding the K40c's 12 GB
    on some shapes).
    """

    def __init__(self, requested: int, in_use: int, capacity: int):
        self.requested = requested
        self.in_use = in_use
        self.capacity = capacity
        super().__init__(
            f"device OOM: requested {requested} B with {in_use} B in use "
            f"of {capacity} B capacity"
        )


class MemoryPressureError(DeviceOOMError):
    """An allocation failed only because an injected memory-pressure
    window has reserved part of the device (the request would have fit
    the unpressured card).

    Subclasses :class:`DeviceOOMError` so every existing OOM handler
    keeps working; carries the reserved size so resilient callers can
    tell "degrade and retry later" (pressure) apart from "will never
    fit" (true OOM).
    """

    def __init__(self, requested: int, in_use: int, capacity: int,
                 reserved: int):
        super().__init__(requested, in_use, capacity)
        self.reserved = reserved
        # Rewrite the message with the pressure context.
        self.args = (
            f"memory pressure: requested {requested} B with {in_use} B in "
            f"use and {reserved} B reserved of {capacity} B capacity",
        )


class TransientKernelError(ReproError, RuntimeError):
    """A simulated kernel launch faulted transiently (the ECC
    single-bit-error / replay class of failure: the launch is safe to
    retry after the device scrubs and replays).

    Carries the implementation that faulted, the simulated time of the
    fault and the simulated cost of detection + replay, so a resilient
    scheduler can charge the retry to the virtual clock.
    """

    def __init__(self, implementation: str, at_s: float, retry_cost_s: float):
        self.implementation = implementation
        self.at_s = at_s
        self.retry_cost_s = retry_cost_s
        super().__init__(
            f"{implementation}: transient kernel fault at t={at_s:.6f}s "
            f"(replay cost {retry_cost_s * 1e6:.0f} us)"
        )


class ServerClosedError(ReproError, RuntimeError):
    """An operation was attempted on a serving component after it was
    closed (e.g. offering a request to a drained admission queue)."""


class AllocationError(ReproError, ValueError):
    """Misuse of the device allocator (double free, freeing an unknown
    buffer, negative sizes)."""


class ProfilerError(ReproError, RuntimeError):
    """Misuse of the profiler session (e.g. recording a kernel outside
    an active session, nested sessions on one profiler)."""


class ConvergenceError(ReproError, RuntimeError):
    """Training failed to make progress (used by the trainer to signal
    diverging loss, e.g. NaN)."""


class TraceSchemaError(ReproError, ValueError):
    """A saved observability artifact (JSONL event log, metrics
    snapshot) could not be loaded: unknown schema version, malformed
    records, or dangling span references."""
