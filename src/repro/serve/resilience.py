"""Recovery policies for the serving scheduler.

Three layers of defence, each bounded and each counted in the run's
:class:`~repro.serve.stats.StatsReport`:

1. **Bounded retry with exponential backoff** (in *simulated* time) —
   transient kernel faults are usually isolated; replaying the launch
   after an ECC scrub recovers them at a cost the virtual clock pays.
2. **Implementation fallback** — when retries exhaust, the dispatcher
   substitutes the advisor's next-ranked feasible implementation (the
   same cached ordering the plan cache already holds): the paper's
   seven implementations are interchangeable wherever feasible, so the
   request completes at a known, quantified slowdown instead of
   failing.
3. **Per-implementation circuit breaker** — a streak of faults on one
   implementation stops being retried at all: the breaker opens after
   ``threshold`` consecutive faults, dispatch skips straight to the
   fallback, and after ``cooldown_s`` of simulated time a single
   half-open probe decides whether to close it again.

The breaker state machine::

            consecutive faults >= threshold
    CLOSED ---------------------------------> OPEN
       ^                                        | cooldown elapsed
       |  probe succeeds                        v
       +----------------------------------- HALF_OPEN
                                                | probe faults
                                                v
                                              OPEN (re-trip)
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the recovery machinery (times are simulated seconds)."""

    #: Launch attempts per implementation per batch (1 = no retry).
    max_attempts: int = 3
    #: First backoff delay; attempt ``n`` waits ``base * factor**(n-1)``.
    backoff_base_s: float = 200e-6
    backoff_factor: float = 2.0
    #: Consecutive faults on one implementation that open its breaker.
    breaker_threshold: int = 5
    #: Simulated seconds an open breaker waits before one half-open probe.
    breaker_cooldown_s: float = 0.05
    #: How many next-ranked implementations a batch may fall back to.
    max_fallbacks: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.breaker_cooldown_s < 0:
            raise ValueError(
                f"breaker_cooldown_s must be >= 0, got {self.breaker_cooldown_s}")
        if self.max_fallbacks < 0:
            raise ValueError(
                f"max_fallbacks must be >= 0, got {self.max_fallbacks}")

    def backoff_s(self, attempt: int) -> float:
        """Simulated wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * self.backoff_factor ** (attempt - 1)


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class _Breaker:
    __slots__ = ("state", "failures", "opened_at_s")

    def __init__(self) -> None:
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at_s = 0.0


class CircuitBreaker:
    """One breaker per implementation, keyed by dispatch name.

    All timing is simulated, so breaker behaviour is as deterministic
    as the run that drives it.
    """

    def __init__(self, threshold: int = 5, cooldown_s: float = 0.05):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._breakers: Dict[str, _Breaker] = {}
        self.trips = 0   # CLOSED/HALF_OPEN -> OPEN transitions
        self.skips = 0   # dispatches refused because a breaker was open

    def _get(self, implementation: str) -> _Breaker:
        b = self._breakers.get(implementation)
        if b is None:
            b = self._breakers[implementation] = _Breaker()
        return b

    def state(self, implementation: str) -> BreakerState:
        return self._get(implementation).state

    def allow(self, implementation: str, now_s: float) -> bool:
        """May ``implementation`` be dispatched at ``now_s``?

        An open breaker past its cooldown transitions to half-open and
        allows exactly one probe; a refusal is counted in
        :attr:`skips`.
        """
        b = self._get(implementation)
        if b.state is BreakerState.OPEN:
            if now_s >= b.opened_at_s + self.cooldown_s:
                b.state = BreakerState.HALF_OPEN
                return True
            self.skips += 1
            return False
        return True

    def record_success(self, implementation: str) -> None:
        b = self._get(implementation)
        b.state = BreakerState.CLOSED
        b.failures = 0

    def record_failure(self, implementation: str, now_s: float) -> None:
        b = self._get(implementation)
        b.failures += 1
        if b.state is BreakerState.HALF_OPEN or b.failures >= self.threshold:
            if b.state is not BreakerState.OPEN:
                self.trips += 1
            b.state = BreakerState.OPEN
            b.opened_at_s = now_s

    def snapshot(self) -> Dict[str, str]:
        """Implementation -> state name, for end-of-run reporting."""
        return {name: b.state.value
                for name, b in sorted(self._breakers.items())}
