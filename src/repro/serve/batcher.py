"""Dynamic batching policy.

The server's throughput lever: coalesce same-shape requests into one
convolution at a larger batch, where every implementation's per-sample
cost drops (Fig. 3a) and the *winner changes* — unrolling at batch 1,
cuDNN mid-range, fbfft at large batches.  Policy is the classic
max-batch / max-wait pair:

* release a lane as soon as ``max_batch`` requests are waiting;
* otherwise release once its head request has waited ``max_wait_s``
  (latency guard);
* in drain mode (no arrivals left) release immediately.

Released batches are padded up to **power-of-two buckets** by default:
a batch of 5 runs at the batch-8 plan.  Padding trades a bounded
amount of wasted compute (fill is reported) for a tiny plan-key space
— at most ``log2(max_batch)+1`` batch sizes per shape — which is what
lets the plan cache reach steady-state hit rates above 90 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .queue import AdmissionQueue
from .request import Request, ShapeKey, batched_config


def next_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (n - 1).bit_length()


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the dynamic batcher."""

    max_batch: int = 64
    max_wait_s: float = 0.002
    bucket: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")

    def padded(self, fill: int, cap: Optional[int] = None) -> int:
        """Batch size a release of ``fill`` requests executes at.

        ``cap`` tightens the bound below ``max_batch`` for the duration
        of a memory-pressure window (the scheduler's graceful
        degradation); callers must have already split ``fill`` down to
        the cap, so the result never drops below ``fill``.
        """
        limit = self.max_batch if cap is None else min(self.max_batch, cap)
        if not self.bucket:
            return fill
        return max(fill, min(next_pow2(fill), limit))


@dataclass(frozen=True)
class Batch:
    """A released batch: the requests plus the execution batch size."""

    requests: Tuple[Request, ...]
    key: ShapeKey
    batch: int  # execution (padded) batch size

    @property
    def fill(self) -> int:
        return len(self.requests)

    @property
    def fill_fraction(self) -> float:
        return self.fill / self.batch

    def config(self):
        return batched_config(self.key, self.batch)


class DynamicBatcher:
    """Forms batches from an :class:`AdmissionQueue` under a policy."""

    def __init__(self, policy: BatchPolicy = BatchPolicy()):
        self.policy = policy
        self.released = 0
        self.padded_slots = 0  # cumulative wasted slots from bucketing
        # Hot-path hoists: the policy is frozen for the batcher's
        # lifetime, so its knobs and the (cap-free) fill -> padded map
        # never change.
        self._max_batch = policy.max_batch
        self._max_wait_s = policy.max_wait_s
        self._padded_cache: dict = {}

    def next_batch(self, queue: AdmissionQueue, now_s: float,
                   drain: bool = False) -> Optional[Batch]:
        """Release the oldest lane if policy allows; else ``None``
        (caller advances the clock and retries)."""
        head = queue.oldest_lane()
        if head is None:
            return None
        key, oldest = head
        max_batch = self._max_batch
        # Release when full, waited past the guard, or draining.  Same
        # expression as release_at(): comparing now against the
        # absolute release time keeps the scheduler's advance_to(release)
        # exact under floating point ((a + w) - a can round below w).
        if (not drain and now_s < oldest.arrival_s + self._max_wait_s
                and queue.lane_len(key) < max_batch):
            return None
        requests = queue.take(key, max_batch)
        fill = len(requests)
        padded = self._padded_cache.get(fill)
        if padded is None:
            padded = self._padded_cache[fill] = self.policy.padded(fill)
        self.released += 1
        self.padded_slots += padded - fill
        batch = Batch.__new__(Batch)
        # Frozen-dataclass fast construction (see request.fast_request).
        batch.__dict__.update(requests=tuple(requests), key=key,
                              batch=padded)
        return batch

    def release_at(self, queue: AdmissionQueue) -> Optional[float]:
        """Earliest future time at which the max-wait guard will
        release the oldest lane (for the scheduler's clock)."""
        arrival = queue.oldest_arrival()
        return None if arrival is None else arrival + self.policy.max_wait_s
