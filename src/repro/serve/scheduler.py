"""The serving worker loop.

A single simulated device drains the admission queue batch by batch:

1. admit every arrival due by now (bounded queue — overflow rejected);
2. shed requests whose queueing deadline passed;
3. ask the dynamic batcher for the next same-shape batch;
4. resolve the batch's plan — plan-cache hit, or advisor ranking on a
   miss — then replay the chosen implementation's memory plan through
   the device allocator and advance the
   :class:`~repro.gpusim.timing.SimClock` by the simulated service
   time;
5. if the batch does not fit device memory, split it in half and try
   the halves (a single sample that still does not fit is shed).

Time is entirely virtual: service times come from the gpusim roofline
model (via the advisor's ranking), waiting comes from the arrival
trace, and no wall clock is ever consulted — a run is a pure function
of its trace and configuration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core.advisor import Advisor, RankedPlan
from ..errors import DeviceOOMError
from ..frameworks.calibration import CONTEXT_BYTES
from ..frameworks.registry import resolve_implementation, shared_implementations
from ..gpusim.allocator import DeviceAllocator
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.timing import SimClock
from .batcher import BatchPolicy, DynamicBatcher
from .loadgen import Arrival
from .plan_cache import PlanCache
from .queue import AdmissionQueue
from .request import Completion, Request, ShapeKey, batched_config
from .stats import ServingStats, StatsReport

#: The advisor ranks full training iterations (forward + two backward
#: passes of equal direct-algorithm cost — see
#: :attr:`repro.config.ConvConfig.training_flops`); inference serves
#: the forward pass only.
FORWARD_FRACTION = 1.0 / 3.0


@dataclass(frozen=True)
class ServerConfig:
    """Everything a serving run is parameterised by."""

    policy: BatchPolicy = BatchPolicy()
    queue_depth: int = 512
    timeout_s: float = 0.25
    device: DeviceSpec = K40C
    plan_cache_capacity: int = 128
    memory_budget: Optional[int] = None   # bytes; None = device capacity
    forward_only: bool = True

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")


class Server:
    """One simulated inference server over one device."""

    def __init__(self, config: ServerConfig = ServerConfig(),
                 advisor: Optional[Advisor] = None,
                 record_timeline: bool = False):
        self.config = config
        self.advisor = advisor or Advisor(
            device=config.device, implementations=shared_implementations())
        self.plan_cache = PlanCache(config.plan_cache_capacity)
        self.clock = SimClock()
        #: (simulated time, bytes in use) per allocator event, when
        #: timeline recording is on.
        self.memory_timeline: List[Tuple[float, int]] = []
        self._allocator = DeviceAllocator(config.device,
                                          baseline=CONTEXT_BYTES)
        if record_timeline:
            self._allocator.set_observer(
                lambda event, buf, in_use:
                self.memory_timeline.append((self.clock.now_s, in_use)))

    # ------------------------------------------------------------------

    def _plan_for(self, key: ShapeKey, batch: int) -> Optional[RankedPlan]:
        cache_key = (key, batch, self.config.device.name)
        return self.plan_cache.get_or_compute(
            cache_key,
            lambda: self.advisor.plan(batched_config(key, batch),
                                      memory_budget=self.config.memory_budget))

    def _service_time(self, plan: RankedPlan) -> float:
        scale = FORWARD_FRACTION if self.config.forward_only else 1.0
        return plan.time_s * scale

    def _execute(self, requests: List[Request], key: ShapeKey,
                 stats: ServingStats) -> None:
        """Serve one group of same-shape requests, splitting on OOM."""
        padded = self.config.policy.padded(len(requests))
        plan = self._plan_for(key, padded)
        if plan is None:
            stats.oom_shed += len(requests)
            return
        impl = resolve_implementation(plan.implementation)
        config = batched_config(key, padded)
        buffers = []
        try:
            for tag, size in impl.memory_plan(config):
                if size > 0:
                    buffers.append(self._allocator.alloc(size, tag=tag))
        except DeviceOOMError:
            for buf in buffers:
                self._allocator.free(buf)
            if len(requests) > 1:
                stats.oom_splits += 1
                mid = (len(requests) + 1) // 2
                self._execute(requests[:mid], key, stats)
                self._execute(requests[mid:], key, stats)
            else:
                stats.oom_shed += 1
            return
        start = self.clock.now_s
        finish = self.clock.advance(self._service_time(plan))
        for buf in buffers:
            self._allocator.free(buf)
        stats.record_batch(padded, len(requests), plan.implementation)
        stats.record_completions([
            Completion(request=r, start_s=start, finish_s=finish,
                       batch=padded, fill=len(requests),
                       implementation=plan.implementation)
            for r in requests])

    # ------------------------------------------------------------------

    def run(self, trace: Sequence[Arrival]) -> StatsReport:
        """Serve one arrival trace to completion; returns the report."""
        stats = ServingStats()
        queue = AdmissionQueue(self.config.queue_depth)
        batcher = DynamicBatcher(self.config.policy)
        pending = deque(sorted(trace, key=lambda a: (a.t_s, a.rid)))
        while pending or len(queue):
            while pending and pending[0].t_s <= self.clock.now_s:
                arrival = pending.popleft()
                stats.offered += 1
                queue.offer(Request(
                    rid=arrival.rid, model=arrival.model, layer=arrival.layer,
                    key=arrival.key, arrival_s=arrival.t_s,
                    timeout_s=self.config.timeout_s))
            queue.shed_expired(self.clock.now_s)
            batch = batcher.next_batch(queue, self.clock.now_s,
                                       drain=not pending)
            if batch is not None:
                self._execute(list(batch.requests), batch.key, stats)
                continue
            if not len(queue) and not pending:
                break
            # Nothing releasable: advance to the next event — the next
            # arrival or the oldest lane's max-wait expiry.
            events = []
            if pending:
                events.append(pending[0].t_s)
            release = batcher.release_at(queue)
            if release is not None:
                events.append(release)
            self.clock.advance_to(min(events))
        stats.rejected = queue.rejected
        stats.shed = queue.shed
        return stats.finalize(self.clock.now_s, self.plan_cache.stats(),
                              self._allocator.peak)


def serve_trace(trace: Sequence[Arrival],
                config: ServerConfig = ServerConfig()) -> StatsReport:
    """Convenience one-shot: run ``trace`` on a fresh server."""
    return Server(config).run(trace)
