"""The serving worker loop.

A single simulated device drains the admission queue batch by batch:

1. admit every arrival due by now (bounded queue — overflow rejected);
2. shed requests whose queueing deadline passed;
3. ask the dynamic batcher for the next same-shape batch;
4. resolve the batch's *ranked* plan list — plan-cache hit, or advisor
   ranking on a miss — then replay the chosen implementation's memory
   plan through the device allocator and advance the
   :class:`~repro.gpusim.timing.SimClock` by the simulated service
   time;
5. if the batch does not fit device memory, split it in half and try
   the halves (a single sample that still does not fit is shed, with
   its own ``memory`` shed cause).

When a fault plan (:mod:`repro.faults`) is installed the loop grows a
recovery ladder, every rung bounded and counted:

* a transient kernel fault is retried after the device's ECC
  scrub-and-replay cost plus exponential backoff — all in *simulated*
  time;
* when the retry budget exhausts, dispatch falls back to the advisor's
  next-ranked implementation (the same cached ordering);
* a streak of faults opens that implementation's circuit breaker, so
  dispatch skips it entirely until a half-open probe succeeds;
* a memory-pressure window degrades gracefully: the batch cap halves
  before anything is shed, and recovers when the window passes.

Time is entirely virtual: service times come from the gpusim roofline
model (via the advisor's ranking), waiting comes from the arrival
trace, and no wall clock is ever consulted — a run is a pure function
of ``(trace, configuration, fault plan, seed)``.  A run without a
fault plan is bit-identical to the pre-fault-plane scheduler.

Every run reports into the observability plane (:mod:`repro.obs`): the
stats accumulator is a view over the run's metrics registry, and when
a :class:`~repro.obs.tracer.SimTracer` is attached (see
:meth:`Server.enable_tracing`) the loop records one span tree per run
— admission events, batch spans, plan lookups (with the advisor
ranking and evalcache accesses nested inside on a miss), dispatch
attempts with their gpusim kernel launches as leaves, and fault
injections as span events on the affected spans.  The default tracer
is the no-op :data:`~repro.obs.tracer.NULL_TRACER`, which keeps the
untraced hot path byte-identical to the pre-observability scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.advisor import Advisor, RankedPlan
from ..core.evalcache import DispatchMemo
from ..gpusim.device import spec_digest
from ..errors import (DeviceOOMError, MemoryPressureError, ReproError,
                      TransientKernelError)
from ..faults import FaultInjector, FaultPlan
from ..frameworks.calibration import CONTEXT_BYTES
from ..frameworks.registry import resolve_implementation, shared_implementations
from ..gpusim.allocator import DeviceAllocator
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.timing import SimClock
from ..obs.context import Observability, obs_session
from ..obs.slo import SLOMonitor, SLOPolicy, SLOReport
from ..obs.timeseries import Rollups, TelemetryConfig
from ..obs.tracer import SimTracer, TraceSampler
from ..rng import DEFAULT_SEED
from .batcher import BatchPolicy, DynamicBatcher
from .loadgen import Arrival
from .plan_cache import PlanCache, _MISSING
from .queue import AdmissionQueue
from .request import Request, ShapeKey, batched_config, fast_request
from .resilience import CircuitBreaker, ResilienceConfig
from .stats import ServingStats, StatsReport

#: The advisor ranks full training iterations (forward + two backward
#: passes of equal direct-algorithm cost — see
#: :attr:`repro.config.ConvConfig.training_flops`); inference serves
#: the forward pass only.
FORWARD_FRACTION = 1.0 / 3.0


class _RetriesExhausted(Exception):
    """Internal: one implementation burned its whole retry budget."""


@dataclass(frozen=True)
class ServerConfig:
    """Everything a serving run is parameterised by."""

    policy: BatchPolicy = BatchPolicy()
    queue_depth: int = 512
    timeout_s: float = 0.25
    device: DeviceSpec = K40C
    plan_cache_capacity: int = 128
    memory_budget: Optional[int] = None   # bytes; None = device capacity
    forward_only: bool = True
    resilience: ResilienceConfig = ResilienceConfig()
    #: Attach a simulated-time SLO monitor (:mod:`repro.obs.slo`).
    #: ``None`` (the default) keeps the run byte-identical to an
    #: unmonitored one.
    slo: Optional[SLOPolicy] = None
    #: Memoize per-(shape, batch, implementation) memory plans so
    #: repeat dispatches replay the allocation episode instead of
    #: re-deriving it (:class:`~repro.core.evalcache.DispatchMemo`).
    #: Purely a host-time optimisation — reports, metrics and traces
    #: are byte-identical with it off.
    dispatch_memo: bool = True
    #: Attach live windowed rollups (:mod:`repro.obs.timeseries`).
    #: ``None`` (the default) runs without the telemetry plane; the
    #: plane itself is observational only — the report is
    #: byte-identical either way.
    telemetry: Optional[TelemetryConfig] = None

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")


class Server:
    """One simulated inference server over one device.

    ``fault_plan`` installs a :class:`~repro.faults.plan.FaultPlan`
    through a :class:`~repro.faults.injector.FaultInjector` seeded with
    ``fault_seed``; ``None`` (or a no-op plan) leaves the scheduler on
    the exact fault-free path.

    :meth:`run` drives one whole arrival trace to completion.  The
    loop underneath it is exposed as a *session* API —
    :meth:`begin` / :meth:`admit` / :meth:`shed_expired` /
    :meth:`pump` / :meth:`finish` — so an external driver (the
    :mod:`repro.cluster` replica loop) can interleave this server's
    work with other servers on a shared fleet timeline while reusing
    the exact same batching, recovery and accounting machinery.
    """

    def __init__(self, config: ServerConfig = ServerConfig(),
                 advisor: Optional[Advisor] = None,
                 record_timeline: bool = False,
                 fault_plan: Optional[FaultPlan] = None,
                 fault_seed: Optional[int] = None,
                 obs: Optional[Observability] = None):
        self.config = config
        #: The run's observability context: a real metrics registry
        #: (ServingStats is a view over it) and, by default, the no-op
        #: tracer — see :meth:`enable_tracing`.
        self.obs = obs if obs is not None else Observability()
        self.advisor = advisor or Advisor(
            device=config.device, implementations=shared_implementations())
        self.plan_cache = PlanCache(config.plan_cache_capacity)
        self.clock = SimClock()
        self._device_name = config.device.name
        # Cache keys carry the full spec digest, not just the display
        # name, so plans never leak between two devices that happen to
        # share a label (e.g. a tweaked profile under the same name).
        self._device_key = (config.device.name, spec_digest(config.device))
        #: ``name@digest`` — the device *identity* label every
        #: device-split telemetry series carries (same convention as
        #: :func:`repro.core.evalcache.device_key`).
        self._device_label = f"{self._device_key[0]}@{self._device_key[1]}"
        # Pre-bound plan-cache traffic counters (hot path: one method
        # call per lookup, no label-key construction).  Device-labeled
        # so mixed-fleet rollups split cleanly by device class.
        registry = self.obs.registry
        self._pc_hits = registry.counter("serve_plan_cache_requests_total",
                                         device=self._device_label,
                                         result="hit")
        self._pc_misses = registry.counter("serve_plan_cache_requests_total",
                                           device=self._device_label,
                                           result="miss")
        self._forward_scale = FORWARD_FRACTION if config.forward_only else 1.0
        #: Memory-plan memo behind the dispatch fast path; None when
        #: disabled (``--no-dispatch-memo``).
        self._memo: Optional[DispatchMemo] = (DispatchMemo()
                                              if config.dispatch_memo
                                              else None)
        self._fallback_limit = 1 + config.resilience.max_fallbacks
        # (key, padded) -> LayerConfig; pure function of its key, so
        # the frozen configs are shared across dispatches.
        self._config_cache: Dict[Tuple[ShapeKey, int], object] = {}
        #: (simulated time, bytes in use) per allocator event, when
        #: timeline recording is on.
        self.memory_timeline: List[Tuple[float, int]] = []
        self._allocator = DeviceAllocator(config.device,
                                          baseline=CONTEXT_BYTES)
        if record_timeline:
            self._allocator.set_observer(
                lambda event, buf, in_use:
                self.memory_timeline.append((self.clock.now_s, in_use)))
        self._injector: Optional[FaultInjector] = None
        if fault_plan is not None and not fault_plan.is_noop:
            seed = DEFAULT_SEED if fault_seed is None else fault_seed
            self._injector = FaultInjector(fault_plan, seed=seed,
                                           device=config.device)
            self._injector.install(self.clock, allocator=self._allocator,
                                   plan_cache=self.plan_cache)
        self._breaker = CircuitBreaker(
            threshold=config.resilience.breaker_threshold,
            cooldown_s=config.resilience.breaker_cooldown_s)
        #: Degraded batch cap while a memory-pressure window is active;
        #: None = full policy cap.
        self._degraded_cap: Optional[int] = None
        #: End-of-run SLO verdict, set by :meth:`run` when the config
        #: carries an :class:`~repro.obs.slo.SLOPolicy`.
        self.slo_report: Optional[SLOReport] = None
        # -- per-session state, created by begin() -------------------------
        self.stats: Optional[ServingStats] = None
        self.queue: Optional[AdmissionQueue] = None
        self.batcher: Optional[DynamicBatcher] = None
        self._monitor: Optional[SLOMonitor] = None
        #: Live windowed rollups, built by :meth:`begin` when the
        #: config carries a :class:`~repro.obs.timeseries.TelemetryConfig`.
        self.telemetry: Optional[Rollups] = None
        self._tel_cursor = 0
        self._breaker_base = (0, 0)
        self._injector_base = (0, 0)

    @property
    def device_label(self) -> str:
        """``name@digest`` — the device identity label telemetry
        rollups split series by."""
        return self._device_label

    def enable_tracing(self, sample: int = 1) -> Union[SimTracer,
                                                       TraceSampler]:
        """Attach a span tracer driven by this server's clock.

        ``sample`` > 1 wraps it in a :class:`~repro.obs.tracer.
        TraceSampler` keeping one in every ``sample`` ``serve.batch``
        span trees (exact metrics, thinned trace).  Returns the tracer
        so the caller can export its span forest after :meth:`run`
        (see :mod:`repro.obs.export`).
        """
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        tracer: Union[SimTracer, TraceSampler] = SimTracer(self.clock)
        if sample > 1:
            tracer = TraceSampler(tracer, sample)
        self.obs.tracer = tracer
        return tracer

    def dispatch_memo_stats(self) -> Optional[Dict[str, object]]:
        """Hit/miss counters of the dispatch memo (None when disabled).

        Deliberately *not* part of the metrics registry or the report:
        the memo is purely a host-side optimisation, and folding its
        traffic into observable state would break the memo-on/off
        byte-identity invariant the benches gate on.
        """
        return None if self._memo is None else self._memo.stats()

    # ------------------------------------------------------------------

    def _plan_for(self, key: ShapeKey, batch: int) -> Tuple[RankedPlan, ...]:
        cache_key = (key, batch, self._device_key)
        tracer = self.obs.tracer
        if not tracer.enabled:
            # Span-free hot path: identical cache traffic (the lookup
            # still counts its hit or miss) without building a compute
            # closure per call.
            plans = self.plan_cache.get(cache_key)
            if plans is not _MISSING:
                self._pc_hits.inc()
                return plans
            self._pc_misses.inc()
            plans = self.advisor.plan_ranked(
                batched_config(key, batch),
                memory_budget=self.config.memory_budget,
                device=self.config.device)
            self.plan_cache.put(cache_key, plans)
            return plans
        with tracer.span("serve.plan", cat="serve", batch=batch) as sp:
            hit = cache_key in self.plan_cache
            (self._pc_hits if hit else self._pc_misses).inc()
            plans = self.plan_cache.get_or_compute(
                cache_key,
                lambda: self.advisor.plan_ranked(
                    batched_config(key, batch),
                    memory_budget=self.config.memory_budget,
                    device=self.config.device))
            sp.annotate(hit=hit, candidates=len(plans or ()))
        return plans

    def _service_time(self, plan: RankedPlan) -> float:
        scale = FORWARD_FRACTION if self.config.forward_only else 1.0
        return plan.time_s * scale

    def _effective_cap(self) -> Optional[int]:
        """The degraded batch cap, dropped once pressure passes."""
        if self._degraded_cap is None:
            return None
        if self._injector is None or \
                not self._injector.pressure_active(self.clock.now_s):
            self._degraded_cap = None
            return None
        return self._degraded_cap

    # ------------------------------------------------------------------

    def _dispatch(self, plan: RankedPlan, rank: int, config,
                  padded: int, requests: List[Request],
                  stats: ServingStats) -> None:
        """Run one batch on one implementation, retrying transient
        faults up to the resilience budget.

        Raises :class:`_RetriesExhausted` when the budget burns out
        (the caller falls back to the next-ranked plan) and
        :class:`DeviceOOMError` / :class:`MemoryPressureError` when the
        memory plan does not fit (the caller splits or sheds).
        """
        if (self._memo is not None and not self.obs.tracer.recording
                and not self._allocator.observed):
            self._dispatch_fast(plan, rank, config, padded, requests, stats)
            return
        impl = resolve_implementation(plan.implementation)
        res = self.config.resilience
        tracer = self.obs.tracer
        attempts = 0
        with tracer.span("serve.dispatch", cat="serve",
                         implementation=plan.implementation,
                         rank=rank, batch=padded,
                         fill=len(requests)) as sp:
            while True:
                buffers = []
                try:
                    for tag, size in impl.memory_plan(config):
                        if size > 0:
                            buffers.append(self._allocator.alloc(size, tag=tag))
                    if self._injector is not None:
                        self._injector.check_launch(self.clock.now_s,
                                                    plan.implementation, rank)
                except TransientKernelError as fault:
                    for buf in buffers:
                        self._allocator.free(buf)
                    sp.event("fault.transient",
                             implementation=plan.implementation,
                             attempt=attempts + 1,
                             retry_cost_s=fault.retry_cost_s)
                    self._breaker.record_failure(plan.implementation,
                                                 self.clock.now_s)
                    # The fault is detected and replayed at the device's
                    # ECC scrub cost whether or not we retry.
                    self.clock.advance(fault.retry_cost_s)
                    attempts += 1
                    if attempts >= res.max_attempts:
                        sp.annotate(outcome="retries_exhausted")
                        raise _RetriesExhausted() from fault
                    stats.retries += 1
                    sp.event("retry.backoff", attempt=attempts,
                             backoff_s=res.backoff_s(attempts))
                    self.clock.advance(res.backoff_s(attempts))
                    continue
                except DeviceOOMError:
                    for buf in buffers:
                        self._allocator.free(buf)
                    raise
                break
            start = self.clock.now_s
            service = self._service_time(plan)
            if self._injector is not None:
                slowdown = self._injector.slowdown(start)
                if slowdown != 1.0:
                    sp.event("fault.straggler", slowdown=slowdown)
                service *= slowdown
            finish = self.clock.advance(service)
            for buf in buffers:
                self._allocator.free(buf)
            if self._injector is not None:
                self._breaker.record_success(plan.implementation)
            if tracer.recording:
                self._kernel_leaves(tracer, impl, config, start, finish)
        stats.record_dispatch(requests, start, finish, padded,
                              len(requests), plan.implementation)
        if rank > 0:
            stats.fallback_batches += 1
            stats.fallback_completions += len(requests)

    def _dispatch_fast(self, plan: RankedPlan, rank: int, config,
                       padded: int, requests: List[Request],
                       stats: ServingStats) -> None:
        """The memoized dispatch lane.

        Same simulated-time arithmetic, fault ladder, error semantics
        and accounting as :meth:`_dispatch`, with two host-time-only
        substitutions: the memory plan comes from the
        :class:`~repro.core.evalcache.DispatchMemo` (keyed by shape,
        batch, implementation, device and the plan-cache corruption
        epoch) and is replayed through
        :meth:`~repro.gpusim.allocator.DeviceAllocator.replay_transient`
        instead of allocating real buffers.  Only taken when nothing
        can observe the difference: no span is being recorded and no
        allocator observer is attached.
        """
        impl_name = plan.implementation
        allocator = self._allocator
        clock = self.clock
        injector = self._injector
        key = requests[0].key
        sizes, total = self._memo.memory_plan(
            (key, padded, impl_name, self._device_key,
             self.plan_cache.corruptions),
            resolve_implementation(impl_name), config)
        if injector is None:
            # No fault plan: replay can only raise OOM (handled by the
            # caller) and nothing rewrites the service time.
            allocator.replay_transient(sizes, total)
            start = clock._now
            finish = clock.advance(plan.time_s * self._forward_scale)
        else:
            res = self.config.resilience
            attempts = 0
            while True:
                try:
                    allocator.replay_transient(sizes, total)
                    injector.check_launch(clock.now_s, impl_name, rank)
                except TransientKernelError as fault:
                    self._breaker.record_failure(impl_name, clock.now_s)
                    clock.advance(fault.retry_cost_s)
                    attempts += 1
                    if attempts >= res.max_attempts:
                        raise _RetriesExhausted() from fault
                    stats.retries += 1
                    clock.advance(res.backoff_s(attempts))
                    continue
                break
            start = clock.now_s
            service = plan.time_s * self._forward_scale
            service *= injector.slowdown(start)
            finish = clock.advance(service)
            self._breaker.record_success(impl_name)
        fill = len(requests)
        stats.record_dispatch(requests, start, finish, padded, fill,
                              impl_name)
        if rank > 0:
            stats.fallback_batches += 1
            stats.fallback_completions += fill

    def _kernel_leaves(self, tracer, impl, config, start: float,
                       finish: float) -> None:
        """Lay the batch's simulated kernel launches back-to-back
        inside the dispatch window as leaf spans.

        The per-kernel rows come from the shared evaluation cache (the
        ranking that chose this plan already evaluated the point, so
        this is a cache hit), scaled from the full training iteration
        onto the served service time.  Traced runs only.
        """
        from ..core.evalcache import evaluate
        record = evaluate(impl, config, self.config.device)
        kernels = record.kernels
        total = sum(k.time_s for k in kernels)
        if not kernels or total <= 0:
            return
        scale = (finish - start) / total
        t = start
        for k in kernels:
            # KernelTiming rows carry a spec; KernelRecord rows are flat.
            spec = getattr(k, "spec", None)
            name = spec.name if spec is not None else k.name
            role = spec.role.value if spec is not None else k.role
            dur = k.time_s * scale
            tracer.add_span(name, cat="gpu", start_s=t, end_s=t + dur,
                            role=role, model_time_s=k.time_s)
            t += dur

    def _split(self, requests: Sequence[Request], key: ShapeKey,
               stats: ServingStats) -> None:
        stats.oom_splits += 1
        mid = (len(requests) + 1) // 2
        self._execute(requests[:mid], key, stats)
        self._execute(requests[mid:], key, stats)

    def _execute(self, requests: Sequence[Request], key: ShapeKey,
                 stats: ServingStats,
                 padded: Optional[int] = None) -> None:
        """Serve one group of same-shape requests, walking the recovery
        ladder: retry → fallback → breaker skip → split on OOM →
        degrade under pressure → shed (counted by cause) last.

        ``padded`` is an optional precomputed ``policy.padded(fill)``
        hint from the batcher (valid only while no degradation cap is
        active — the batcher computed it cap-free).
        """
        # Inlined _effective_cap guard: no method call while no
        # degradation window is active (the overwhelmingly common case).
        cap = self._degraded_cap
        if cap is not None:
            cap = self._effective_cap()
        if cap is not None and len(requests) > cap:
            for i in range(0, len(requests), cap):
                self._execute(requests[i:i + cap], key, stats)
            return
        if padded is None or cap is not None:
            padded = self.config.policy.padded(len(requests), cap)
        plans = self._plan_for(key, padded)
        if not plans:
            stats.oom_shed += len(requests)
            stats.record_shed("infeasible", len(requests))
            return
        config = self._config_cache.get((key, padded))
        if config is None:
            config = self._config_cache[(key, padded)] = \
                batched_config(key, padded)
        tracer = self.obs.tracer
        # Pick the dispatch lane once per batch: the memoized fast lane
        # whenever nothing can observe the difference (no span being
        # recorded, no allocator observer), else the reference path.
        dispatch = (self._dispatch_fast
                    if (self._memo is not None and not tracer.recording
                        and not self._allocator.observed)
                    else self._dispatch)
        limit = self._fallback_limit
        for rank, plan in enumerate(plans[:limit]):
            if self._injector is not None and \
                    not self._breaker.allow(plan.implementation,
                                            self.clock.now_s):
                tracer.event("breaker.skip",
                             implementation=plan.implementation, rank=rank)
                continue
            try:
                dispatch(plan, rank, config, padded, requests, stats)
            except _RetriesExhausted:
                continue            # substitute the next-ranked plan
            except MemoryPressureError:
                stats.pressure_events += 1
                tracer.event("fault.memory_pressure", batch=padded,
                             degraded_cap=max(1, padded // 2))
                # Graceful degradation: halve the cap before shedding.
                self._degraded_cap = max(1, padded // 2)
                if len(requests) > 1:
                    self._split(requests, key, stats)
                else:
                    stats.oom_shed += 1
                    stats.record_shed("memory")
                return
            except DeviceOOMError:
                tracer.event("oom.split" if len(requests) > 1 else "oom.shed",
                             batch=padded)
                if len(requests) > 1:
                    self._split(requests, key, stats)
                else:
                    stats.oom_shed += 1
                    stats.record_shed("memory")
                return
            if cap is not None:
                stats.degraded_batches += 1
            return
        # Every candidate faulted past its budget or sat behind an open
        # breaker: the batch is shed, attributed to faults.
        tracer.event("shed.fault", requests=len(requests))
        stats.record_shed("fault", len(requests))

    # ------------------------------------------------------------------

    # -- the session API (what run() is built from) --------------------

    def begin(self) -> "Server":
        """Open a serving session: fresh queue, batcher and stats.

        :meth:`run` calls this itself; an external driver (the cluster
        replica loop) calls ``begin`` once, then :meth:`admit` /
        :meth:`shed_expired` / :meth:`pump` as its timeline dictates,
        and :meth:`finish` to freeze the report.
        """
        self.stats = ServingStats(registry=self.obs.registry)
        self.queue = AdmissionQueue(self.config.queue_depth)
        self.batcher = DynamicBatcher(self.config.policy)
        self._degraded_cap = None
        self._monitor = (SLOMonitor(self.config.slo, self.obs)
                         if self.config.slo is not None else None)
        self.telemetry = None
        self._tel_cursor = 0
        if self.config.telemetry is not None:
            tel = Rollups(window_s=self.config.telemetry.window_s)
            tel.add_source("server", self.obs.registry,
                           device=self._device_label)
            tel.add_probe("plan_cache", self.plan_cache.stats,
                          device=self._device_label)
            if self._memo is not None:
                tel.add_probe("dispatch_memo", self._memo.stats,
                              device=self._device_label)
            self.telemetry = tel
        self._breaker_base = (self._breaker.trips, self._breaker.skips)
        self._injector_base = (0, 0)
        if self._injector is not None:
            self._injector_base = (self._injector.faults_injected,
                                   self._injector.entries_corrupted)
        return self

    def admit(self, request: Request) -> bool:
        """Offer one request to the session's admission queue."""
        self.stats.offered += 1
        admitted = self.queue.offer(request)
        self.obs.tracer.event("serve.admit" if admitted else "serve.reject",
                              rid=request.rid, model=request.model,
                              layer=request.layer)
        return admitted

    def shed_expired(self) -> int:
        """Drop every queued request whose deadline has passed."""
        expired = self.queue.shed_expired(self.clock.now_s)
        if expired:
            self.obs.tracer.event("serve.shed_expired",
                                  requests=len(expired))
        return len(expired)

    def pump(self, drain: bool = False) -> bool:
        """Release and execute one batch at the current simulated time.

        Returns whether a batch ran (dispatching advances the clock by
        the simulated service time); ``False`` means the batcher is
        holding for more fill or the queue is empty.
        """
        batch = self.batcher.next_batch(self.queue, self.clock.now_s,
                                        drain=drain)
        if batch is None:
            return False
        tracer = self.obs.tracer
        if not tracer.enabled:
            # Span-free hot path: skips the attribute bundle the no-op
            # span would discard anyway.  Identical accounting.
            try:
                self._execute(batch.requests, batch.key, self.stats,
                              batch.batch)
            except ReproError:
                self.stats.unhandled_errors += 1
                self.stats.record_shed("error", len(batch.requests))
            return True
        with tracer.span("serve.batch", cat="serve",
                         model=batch.requests[0].model,
                         layer=batch.requests[0].layer,
                         fill=batch.fill, batch=batch.batch):
            try:
                self._execute(list(batch.requests), batch.key, self.stats,
                              batch.batch)
            except ReproError as exc:
                # No recovery layer absorbed it: count the failure
                # loudly instead of crashing the serving loop.
                tracer.event("serve.unhandled_error",
                             error=type(exc).__name__)
                self.stats.unhandled_errors += 1
                self.stats.record_shed("error", len(batch.requests))
        return True

    def telemetry_poll(self, now_s: float) -> None:
        """Feed completions recorded since the last poll into the
        rollups, then fold/flush windows owed as of ``now_s``.  No-op
        without a telemetry config; never touches simulated state."""
        tel = self.telemetry
        if tel is None:
            return
        completions = self.stats.completions
        cursor = self._tel_cursor
        if cursor < len(completions):
            observe = tel.observe_completion
            device = self._device_label
            for completion in completions[cursor:]:
                observe(completion, device=device)
            self._tel_cursor = len(completions)
        tel.poll(now_s)

    def finish(self) -> StatsReport:
        """Freeze the session into its end-of-run report."""
        stats, queue = self.stats, self.queue
        if self.telemetry is not None:
            self.telemetry_poll(self.clock.now_s)
            self.telemetry.finalize(self.clock.now_s)
        stats.rejected = queue.rejected
        stats.shed = queue.shed
        stats.closed_shed = queue.closed_out
        if self._monitor is not None:
            self.slo_report = self._monitor.finalize(self.clock.now_s)
        trips0, skips0 = self._breaker_base
        stats.breaker_trips = self._breaker.trips - trips0
        stats.breaker_skips = self._breaker.skips - skips0
        if self._injector is not None:
            faults0, corrupted0 = self._injector_base
            stats.faults_injected = self._injector.faults_injected - faults0
            stats.cache_corruptions = \
                self._injector.entries_corrupted - corrupted0
        return stats.finalize(self.clock.now_s, self.plan_cache.stats(),
                              self._allocator.peak)

    # -- the one-server driver ------------------------------------------

    def run(self, trace: Sequence[Arrival]) -> StatsReport:
        """Serve one arrival trace to completion; returns the report."""
        self.begin()
        tracer = self.obs.tracer
        clock = self.clock
        queue = self.queue
        stats = self.stats
        monitor = self._monitor
        timeout_s = self.config.timeout_s
        # Sorted list + cursor instead of a deque of popped arrivals:
        # bulk admission walks a slice with no per-element pops.  The
        # per-request admit() path (with its serve.admit/reject events)
        # is only needed when a real tracer is attached.
        pending = sorted(trace, key=lambda a: (a.t_s, a.rid))
        n = len(pending)
        i = 0
        traced_admits = tracer.enabled
        offer = None if traced_admits else queue.offer
        next_batch = self.batcher.next_batch
        with obs_session(self.obs), \
                tracer.span("serve.run", cat="serve",
                            device=self._device_name,
                            arrivals=len(trace)):
            while i < n or queue._depth:
                now = clock._now
                if monitor is not None:
                    monitor.poll(now)
                if self.telemetry is not None:
                    # Poll at the loop top: counter ticks between stops
                    # are attributed to the window their dispatch began
                    # in (exact — the loop only mutates state at stops).
                    self.telemetry_poll(now)
                if i < n and pending[i].t_s <= now:
                    j = i
                    if traced_admits:
                        while j < n and pending[j].t_s <= now:
                            a = pending[j]
                            self.admit(Request(
                                rid=a.rid, model=a.model, layer=a.layer,
                                key=a.key, arrival_s=a.t_s,
                                timeout_s=timeout_s))
                            j += 1
                        i = j
                    else:
                        while j < n and pending[j].t_s <= now:
                            a = pending[j]
                            offer(fast_request(a.rid, a.model, a.layer,
                                               a.key, a.t_s, timeout_s))
                            j += 1
                        stats.count_offered(j - i)
                        i = j
                if traced_admits:
                    self.shed_expired()
                    if self.pump(drain=i >= n):
                        continue
                else:
                    # Inlined shed + pump: the guard on the queue's lazy
                    # deadline bound and the direct _execute call skip
                    # two call frames per iteration; accounting is
                    # identical to shed_expired()/pump() above.
                    if now > queue._min_deadline:
                        queue.shed_expired(now)
                    batch = next_batch(queue, now, i >= n)
                    if batch is not None:
                        try:
                            self._execute(batch.requests, batch.key,
                                          stats, batch.batch)
                        except ReproError:
                            stats.unhandled_errors += 1
                            stats.record_shed("error", len(batch.requests))
                        continue
                if i >= n and not queue._depth:
                    break
                # Nothing releasable: advance to the next event — the next
                # arrival or the oldest lane's max-wait expiry.
                events = []
                if i < n:
                    events.append(pending[i].t_s)
                release = self.batcher.release_at(queue)
                if release is not None:
                    events.append(release)
                clock.advance_to(min(events))
        return self.finish()


def serve_trace(trace: Sequence[Arrival],
                config: ServerConfig = ServerConfig(),
                fault_plan: Optional[FaultPlan] = None,
                fault_seed: Optional[int] = None) -> StatsReport:
    """Convenience one-shot: run ``trace`` on a fresh server."""
    return Server(config, fault_plan=fault_plan,
                  fault_seed=fault_seed).run(trace)
