"""Simulated-clock inference serving.

The paper's advisor answers "which implementation should I use?" for
one offline configuration.  This package asks the production version
of that question: traffic arrives as single-sample inference requests
over a *mix* of CNN layer shapes, and the winning implementation flips
with the batch size the server manages to form (fbfft at large
batches, unrolling at batch 1 — the Fig. 3a crossover, live).  The
subsystem composes the existing pieces:

* :mod:`repro.serve.request` / :mod:`repro.serve.queue` — the request
  model and a bounded admission queue with timeout-based shedding;
* :mod:`repro.serve.batcher` — dynamic batching: coalesce same-shape
  requests under a max-batch / max-wait policy, padded to power-of-two
  buckets so the plan cache stays small;
* :mod:`repro.serve.plan_cache` — LRU memoization of advisor-ranked
  implementation choices per ``(shape, batch, device)``;
* :mod:`repro.serve.scheduler` — the worker loop: executes batches
  through the shared framework adapters, advances a deterministic
  :class:`~repro.gpusim.timing.SimClock`, and tracks device memory
  against the :class:`~repro.gpusim.allocator.DeviceAllocator`;
* :mod:`repro.serve.stats` — throughput, latency percentiles, queue
  and cache health;
* :mod:`repro.serve.loadgen` — seeded Poisson / bursty arrival traces
  over AlexNet / VGG / GoogLeNet layer shapes.

Everything runs on virtual time: a 60-second traffic run takes a
fraction of a wall second and two runs with the same seed are
byte-identical.
"""

from .batcher import Batch, BatchPolicy, DynamicBatcher
from .loadgen import Arrival, MODEL_SHAPES, TrafficSpec, generate_trace, trace_summary
from .plan_cache import PlanCache
from .queue import AdmissionQueue
from .request import Completion, Request, batched_config, shape_key
from .resilience import BreakerState, CircuitBreaker, ResilienceConfig
from .scheduler import Server, ServerConfig, serve_trace
from .stats import (SHED_CAUSES, ServingStats, StatsReport,
                    merge_shed_causes)

__all__ = [
    "AdmissionQueue",
    "Arrival",
    "Batch",
    "BatchPolicy",
    "BreakerState",
    "CircuitBreaker",
    "Completion",
    "DynamicBatcher",
    "MODEL_SHAPES",
    "PlanCache",
    "Request",
    "ResilienceConfig",
    "Server",
    "ServerConfig",
    "serve_trace",
    "ServingStats",
    "SHED_CAUSES",
    "StatsReport",
    "TrafficSpec",
    "batched_config",
    "generate_trace",
    "merge_shed_causes",
    "shape_key",
    "trace_summary",
]
