"""Serving metrics.

Collected live by the scheduler, frozen into a :class:`StatsReport` at
the end of a run.  Latencies are arrival-to-finish (queueing wait plus
service); throughput is completed requests over the simulated
makespan; everything is derived from virtual time, so reports are
deterministic for a fixed trace.

Since the observability plane landed, :class:`ServingStats` is a
*view* over a :class:`repro.obs.metrics.MetricsRegistry` rather than a
bag of private fields: every scalar it exposes is a registry counter
(``serve_*_total``), the per-cause / per-implementation / per-size
dicts are labeled counter series, and latencies feed
``serve_latency_seconds`` histograms — so a ``--metrics`` snapshot and
a :class:`StatsReport` are two renderings of the same store.  The
attribute API (``stats.retries += 1`` and friends) is unchanged.

:func:`percentile` lives in :mod:`repro.obs.hist` now (one shared
implementation for serve, obs and the benchmarks) and is re-exported
here for backward compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs.hist import percentile  # noqa: F401  (re-export, see docstring)
from ..obs.metrics import MetricsRegistry
from .request import Completion, fast_completion

#: Scalar attribute -> the registry counter backing it.
_COUNTERS = {
    "offered": "serve_requests_offered_total",
    "rejected": "serve_requests_rejected_total",
    "shed": "serve_requests_timeout_shed_total",
    "oom_splits": "serve_oom_splits_total",
    "oom_shed": "serve_oom_shed_total",
    "retries": "serve_retries_total",
    "fallback_batches": "serve_fallback_batches_total",
    "fallback_completions": "serve_fallback_completions_total",
    "breaker_trips": "serve_breaker_trips_total",
    "breaker_skips": "serve_breaker_skips_total",
    "faults_injected": "serve_faults_injected_total",
    "pressure_events": "serve_pressure_events_total",
    "degraded_batches": "serve_degraded_batches_total",
    "cache_corruptions": "serve_cache_corruptions_total",
    "unhandled_errors": "serve_unhandled_errors_total",
    "closed_shed": "serve_closed_shed_total",
}

#: The known ``shed_by_cause`` taxonomy.  Terminal causes drop the
#: request; routing causes (``requeued``, ``hedge_cancelled``) mean it
#: completes — or is accounted — elsewhere in the fleet, so they are
#: excluded from :attr:`StatsReport.shed_rate`.  Consumers must treat
#: this as *open*: reports written by newer code may carry causes not
#: listed here, and loaders/merging must pass them through rather than
#: KeyError (see :meth:`StatsReport.from_dict`).
SHED_CAUSES = (
    "timeout",                  # deadline passed while queued
    "queue_full",               # refused at admission
    "memory",                   # a lone sample's allocation failed
    "infeasible",               # no implementation feasible
    "closed",                   # server shut down with it queued
    "error",                    # unhandled fault
    "fault",                    # injected fault no recovery absorbed
    "requeued",                 # evacuated to the router, completes elsewhere
    "hedge_cancelled",          # losing copy of a hedged request
    "retry_budget_exhausted",   # retry/requeue denied by the tenant budget
)


@dataclass(frozen=True)
class StatsReport:
    """Frozen end-of-run metrics."""

    duration_s: float          # simulated makespan
    offered: int
    completed: int
    rejected: int              # refused at admission (queue full)
    shed: int                  # dropped after admission (timeout)
    oom_splits: int            # batches split because memory didn't fit
    oom_shed: int              # single requests shed for not fitting
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    mean_batch_fill: float     # real requests per released batch
    mean_batch_size: float     # padded (executed) batch size
    batch_histogram: Dict[int, int]  # padded size -> batches released
    plan_cache: Dict[str, float]
    peak_memory_mb: float
    implementations: Dict[str, int]  # paper name -> requests served
    #: Failure taxonomy — every drop attributed to its cause:
    #: ``timeout`` (deadline passed in queue), ``queue_full`` (refused
    #: at admission), ``memory`` (a lone sample's allocation failed),
    #: ``infeasible`` (no implementation feasible for the shape),
    #: ``closed`` (server shut down with the request queued),
    #: ``error`` (unhandled fault), plus the fleet-routing causes
    #: ``requeued`` (evacuated to the router, completes elsewhere),
    #: ``hedge_cancelled`` (the losing copy of a hedged request) and
    #: ``retry_budget_exhausted`` (a requeue the tenant's retry budget
    #: refused).  Causes with zero count are omitted; the set is open
    #: (see :data:`SHED_CAUSES`) and consumers must tolerate unknown
    #: causes.
    shed_by_cause: Dict[str, int] = field(default_factory=dict)
    # -- resilience counters (all zero on a fault-free run) ---------------
    retries: int = 0               # backoff retries after transient faults
    fallback_batches: int = 0      # batches completed on a lower-ranked impl
    fallback_completions: int = 0  # requests riding those batches
    breaker_trips: int = 0         # breaker CLOSED/HALF_OPEN -> OPEN
    breaker_skips: int = 0         # dispatches skipped on an open breaker
    faults_injected: int = 0       # transient faults the plan injected
    pressure_events: int = 0       # allocations refused by memory pressure
    degraded_batches: int = 0      # batches run under a degraded batch cap
    cache_corruptions: int = 0     # plan-cache entries invalidated
    unhandled_errors: int = 0      # faults no recovery layer absorbed
    closed_shed: int = 0           # requests completed with ServerClosed

    @property
    def shed_rate(self) -> float:
        dropped = (self.rejected + self.shed + self.oom_shed
                   + self.closed_shed + self.shed_by_cause.get("error", 0)
                   + self.shed_by_cause.get("fault", 0))
        return dropped / self.offered if self.offered else 0.0

    @property
    def completion_rate(self) -> float:
        """Completed over offered (the chaos harness's headline)."""
        return self.completed / self.offered if self.offered else 0.0

    def render(self) -> str:
        lines = [
            f"simulated duration    {self.duration_s:10.3f} s",
            f"offered / completed   {self.offered} / {self.completed}",
            f"rejected / shed / oom {self.rejected} / {self.shed} / {self.oom_shed}"
            f"  (shed rate {self.shed_rate * 100:.1f} %)",
            f"throughput            {self.throughput_rps:10.1f} req/s",
            f"latency p50/p95/p99   {self.latency_p50_ms:.2f} / "
            f"{self.latency_p95_ms:.2f} / {self.latency_p99_ms:.2f} ms",
            f"batch fill / size     {self.mean_batch_fill:.2f} / "
            f"{self.mean_batch_size:.2f}",
            "batch histogram       " + " ".join(
                f"{size}:{count}" for size, count in
                sorted(self.batch_histogram.items())),
            f"plan cache            {int(self.plan_cache['hits'])} hits / "
            f"{int(self.plan_cache['misses'])} misses "
            f"(hit rate {self.plan_cache['hit_rate'] * 100:.1f} %, "
            f"{int(self.plan_cache['entries'])} entries, "
            f"{int(self.plan_cache['evictions'])} evictions)",
            f"peak device memory    {self.peak_memory_mb:10.0f} MB",
            "dispatch mix          " + " ".join(
                f"{name}:{count}" for name, count in
                sorted(self.implementations.items())),
        ]
        if self.oom_splits:
            lines.append(f"oom batch splits      {self.oom_splits}")
        if self.shed_by_cause:
            lines.append("shed by cause         " + " ".join(
                f"{cause}:{count}" for cause, count in
                sorted(self.shed_by_cause.items())))
        if self._resilience_active():
            lines.extend([
                f"faults / retries      {self.faults_injected} / {self.retries}",
                f"fallback batches/reqs {self.fallback_batches} / "
                f"{self.fallback_completions}",
                f"breaker trips / skips {self.breaker_trips} / "
                f"{self.breaker_skips}",
                f"pressure / degraded   {self.pressure_events} / "
                f"{self.degraded_batches}",
                f"cache corruptions     {self.cache_corruptions}",
                f"unhandled errors      {self.unhandled_errors}",
            ])
        return "\n".join(lines)

    def _resilience_active(self) -> bool:
        return any((self.retries, self.fallback_batches, self.breaker_trips,
                    self.breaker_skips, self.faults_injected,
                    self.pressure_events, self.degraded_batches,
                    self.cache_corruptions, self.unhandled_errors))

    def to_dict(self) -> dict:
        """JSON-ready form (``--json`` output)."""
        return {
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "oom_splits": self.oom_splits,
            "oom_shed": self.oom_shed,
            "shed_rate": self.shed_rate,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
            },
            "mean_batch_fill": self.mean_batch_fill,
            "mean_batch_size": self.mean_batch_size,
            "batch_histogram": {str(k): v for k, v in
                                sorted(self.batch_histogram.items())},
            "plan_cache": self.plan_cache,
            "peak_memory_mb": self.peak_memory_mb,
            "implementations": dict(sorted(self.implementations.items())),
            "shed_by_cause": dict(sorted(self.shed_by_cause.items())),
            "resilience": {
                "retries": self.retries,
                "fallback_batches": self.fallback_batches,
                "fallback_completions": self.fallback_completions,
                "breaker_trips": self.breaker_trips,
                "breaker_skips": self.breaker_skips,
                "faults_injected": self.faults_injected,
                "pressure_events": self.pressure_events,
                "degraded_batches": self.degraded_batches,
                "cache_corruptions": self.cache_corruptions,
                "unhandled_errors": self.unhandled_errors,
                "closed_shed": self.closed_shed,
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "StatsReport":
        """Rebuild a report from its :meth:`to_dict` form.

        Deliberately tolerant: reports archived by older code may lack
        whole sections (``resilience`` predates PR 3) and reports from
        newer code may carry shed causes or resilience counters this
        version has never heard of — missing fields default, unknown
        shed causes are kept verbatim, and unknown keys are ignored
        instead of KeyError-ing, so old JSON artifacts keep loading.
        """
        latency = doc.get("latency_ms", {})
        resilience = doc.get("resilience", {})
        return cls(
            duration_s=doc.get("duration_s", 0.0),
            offered=doc.get("offered", 0),
            completed=doc.get("completed", 0),
            rejected=doc.get("rejected", 0),
            shed=doc.get("shed", 0),
            oom_splits=doc.get("oom_splits", 0),
            oom_shed=doc.get("oom_shed", 0),
            throughput_rps=doc.get("throughput_rps", 0.0),
            latency_p50_ms=latency.get("p50", 0.0),
            latency_p95_ms=latency.get("p95", 0.0),
            latency_p99_ms=latency.get("p99", 0.0),
            mean_batch_fill=doc.get("mean_batch_fill", 0.0),
            mean_batch_size=doc.get("mean_batch_size", 0.0),
            batch_histogram={int(k): v for k, v in
                             doc.get("batch_histogram", {}).items()},
            plan_cache=dict(doc.get("plan_cache", {})),
            peak_memory_mb=doc.get("peak_memory_mb", 0.0),
            implementations=dict(doc.get("implementations", {})),
            shed_by_cause={str(cause): int(count) for cause, count in
                           doc.get("shed_by_cause", {}).items()},
            retries=resilience.get("retries", 0),
            fallback_batches=resilience.get("fallback_batches", 0),
            fallback_completions=resilience.get("fallback_completions", 0),
            breaker_trips=resilience.get("breaker_trips", 0),
            breaker_skips=resilience.get("breaker_skips", 0),
            faults_injected=resilience.get("faults_injected", 0),
            pressure_events=resilience.get("pressure_events", 0),
            degraded_batches=resilience.get("degraded_batches", 0),
            cache_corruptions=resilience.get("cache_corruptions", 0),
            unhandled_errors=resilience.get("unhandled_errors", 0),
            closed_shed=resilience.get("closed_shed", 0),
        )


def merge_shed_causes(*cause_maps: Dict[str, int]) -> Dict[str, int]:
    """Sum any number of ``shed_by_cause`` dicts.

    Iterates whatever causes are present instead of indexing a fixed
    taxonomy, so maps carrying causes newer (or older) than this code
    merge cleanly — the tolerance :data:`SHED_CAUSES` promises.
    """
    merged: Dict[str, int] = {}
    for causes in cause_maps:
        for cause, count in causes.items():
            if count:
                merged[cause] = merged.get(cause, 0) + int(count)
    return merged


class ServingStats:
    """Mutable accumulator the scheduler feeds during a run.

    Scalar counters read and write registry series (see module
    docstring); raw completions stay on the object because the frozen
    report needs exact percentiles over them.  Pass the run's registry
    to share the store with the rest of the observability plane; the
    default is a private one.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.completions: List[Completion] = []
        self.batch_fills: List[int] = []
        # Hot-path metric caches.  Registry lookups normalise labels and
        # hash on every call; the scheduler hits the same handful of
        # series millions of times per run, so resolve each once.
        # Lazily populated so a run that never touches a series leaves
        # the registry (and its snapshot) exactly as before.
        self._hot: Dict[str, object] = {}
        self._batch_counters: Dict[int, object] = {}
        self._impl_counters: Dict[str, object] = {}
        # The three per-batch histograms, bound lazily as attributes —
        # one attribute load per record instead of a name lookup.
        self._fill_hist = None
        self._latency_hist = None
        self._wait_hist = None
        self._completed_counter = None
        self._offered_counter = None

    def _counter(self, name: str):
        metric = self._hot.get(name)
        if metric is None:
            metric = self._hot[name] = self.registry.counter(name)
        return metric

    def _histogram(self, name: str):
        metric = self._hot.get(name)
        if metric is None:
            metric = self._hot[name] = self.registry.histogram(name)
        return metric

    # -- registry-backed views ---------------------------------------------

    def _series_dict(self, name: str, label: str,
                     cast=int) -> Dict[object, int]:
        return {cast(labels[label]): int(metric.value)
                for labels, metric in self.registry.series(name)
                if metric.value}

    @property
    def shed_by_cause(self) -> Dict[str, int]:
        """Cause -> dropped requests (view over ``serve_sheds_total``)."""
        return self._series_dict("serve_sheds_total", "cause", str)

    @property
    def implementations(self) -> Dict[str, int]:
        """Paper name -> requests served (view over
        ``serve_dispatched_requests_total``)."""
        return self._series_dict("serve_dispatched_requests_total",
                                 "implementation", str)

    @property
    def batch_histogram(self) -> Dict[int, int]:
        """Padded size -> batches released (view over
        ``serve_batches_total``)."""
        return self._series_dict("serve_batches_total", "size", int)

    # -- recording ---------------------------------------------------------

    def record_batch(self, padded: int, fill: int, implementation: str) -> None:
        by_size = self._batch_counters.get(padded)
        if by_size is None:
            by_size = self._batch_counters[padded] = self.registry.counter(
                "serve_batches_total", size=padded)
        by_size.inc()
        by_impl = self._impl_counters.get(implementation)
        if by_impl is None:
            by_impl = self._impl_counters[implementation] = \
                self.registry.counter("serve_dispatched_requests_total",
                                      implementation=implementation)
        by_impl.inc(fill)
        fill_hist = self._fill_hist
        if fill_hist is None:
            fill_hist = self._fill_hist = self._histogram("serve_batch_fill")
        fill_hist.observe(fill)
        self.batch_fills.append(fill)

    def record_completions(self, completions: List[Completion]) -> None:
        self.completions.extend(completions)
        self._counter("serve_requests_completed_total").inc(len(completions))
        latency_hist = self._latency_hist
        if latency_hist is None:
            latency_hist = self._latency_hist = \
                self._histogram("serve_latency_seconds")
            self._wait_hist = self._histogram("serve_queue_wait_seconds")
        # One walk computes both series; finalize() reuses the latency
        # observations instead of re-deriving them from the completions.
        if len(completions) == 1:
            c = completions[0]
            arrival = c.request.arrival_s
            latency_hist.observe(c.finish_s - arrival)
            self._wait_hist.observe(c.start_s - arrival)
            return
        latencies = []
        waits = []
        for c in completions:
            arrival = c.request.arrival_s
            latencies.append(c.finish_s - arrival)
            waits.append(c.start_s - arrival)
        latency_hist.observe_many(latencies)
        self._wait_hist.observe_many(waits)

    def record_dispatch(self, requests, start_s: float, finish_s: float,
                        padded: int, fill: int,
                        implementation: str) -> None:
        """Fused :meth:`record_batch` + :meth:`record_completions` for
        the dispatch paths: one walk over the batch builds the
        :class:`Completion` objects and both latency series, with
        identical registry traffic (same metrics, same observation
        order) to calling the two-step API."""
        by_size = self._batch_counters.get(padded)
        if by_size is None:
            by_size = self._batch_counters[padded] = self.registry.counter(
                "serve_batches_total", size=padded)
        by_size.inc()
        by_impl = self._impl_counters.get(implementation)
        if by_impl is None:
            by_impl = self._impl_counters[implementation] = \
                self.registry.counter("serve_dispatched_requests_total",
                                      implementation=implementation)
        by_impl.inc(fill)
        fill_hist = self._fill_hist
        if fill_hist is None:
            fill_hist = self._fill_hist = self._histogram("serve_batch_fill")
        fill_hist.observe(fill)
        self.batch_fills.append(fill)
        latency_hist = self._latency_hist
        if latency_hist is None:
            latency_hist = self._latency_hist = \
                self._histogram("serve_latency_seconds")
            self._wait_hist = self._histogram("serve_queue_wait_seconds")
        completions = self.completions
        if fill == 1:
            r = requests[0]
            completions.append(fast_completion(
                r, start_s, finish_s, padded, fill, implementation))
            arrival = r.arrival_s
            latency_hist.observe(finish_s - arrival)
            self._wait_hist.observe(start_s - arrival)
        else:
            latencies = []
            waits = []
            for r in requests:
                completions.append(fast_completion(
                    r, start_s, finish_s, padded, fill, implementation))
                arrival = r.arrival_s
                latencies.append(finish_s - arrival)
                waits.append(start_s - arrival)
            latency_hist.observe_many(latencies)
            self._wait_hist.observe_many(waits)
        completed = self._completed_counter
        if completed is None:
            completed = self._completed_counter = \
                self._counter("serve_requests_completed_total")
        completed.inc(fill)

    def record_shed(self, cause: str, n: int = 1) -> None:
        """Attribute ``n`` dropped requests to one failure cause."""
        if n:
            self.registry.counter("serve_sheds_total", cause=cause).inc(n)

    def count_offered(self, n: int) -> None:
        """Bulk ``stats.offered += n`` (the run loop's batched admit)."""
        if n:
            offered = self._offered_counter
            if offered is None:
                offered = self._offered_counter = \
                    self._counter("serve_requests_offered_total")
            offered.inc(n)

    def finalize(self, duration_s: float, plan_cache_stats: Dict[str, float],
                 peak_memory_bytes: int) -> StatsReport:
        # record_completions() already computed every latency once;
        # sort that stream instead of walking the completions again.
        latencies = (sorted(self._histogram("serve_latency_seconds")
                            .observations)
                     if self.completions else [])
        n_batches = len(self.batch_fills)
        total_padded = sum(size * count
                           for size, count in self.batch_histogram.items())
        causes = self.shed_by_cause
        if self.shed:
            causes["timeout"] = causes.get("timeout", 0) + self.shed
        if self.rejected:
            causes["queue_full"] = causes.get("queue_full", 0) + self.rejected
        if self.closed_shed:
            causes["closed"] = causes.get("closed", 0) + self.closed_shed
        # End-of-run state published as gauges so a --metrics snapshot
        # is self-contained.
        self.registry.gauge("serve_duration_seconds").set(duration_s)
        self.registry.gauge("serve_peak_memory_bytes").set(peak_memory_bytes)
        for key, value in sorted(plan_cache_stats.items()):
            self.registry.gauge(f"serve_plan_cache_{key}").set(value)
        return StatsReport(
            duration_s=duration_s,
            offered=self.offered,
            completed=len(self.completions),
            rejected=self.rejected,
            shed=self.shed,
            oom_splits=self.oom_splits,
            oom_shed=self.oom_shed,
            throughput_rps=(len(self.completions) / duration_s
                            if duration_s > 0 else 0.0),
            latency_p50_ms=percentile(latencies, 50) * 1000,
            latency_p95_ms=percentile(latencies, 95) * 1000,
            latency_p99_ms=percentile(latencies, 99) * 1000,
            mean_batch_fill=(sum(self.batch_fills) / n_batches
                             if n_batches else 0.0),
            mean_batch_size=(total_padded / n_batches if n_batches else 0.0),
            batch_histogram=self.batch_histogram,
            plan_cache=dict(plan_cache_stats),
            peak_memory_mb=peak_memory_bytes / 2**20,
            implementations=self.implementations,
            shed_by_cause=causes,
            retries=self.retries,
            fallback_batches=self.fallback_batches,
            fallback_completions=self.fallback_completions,
            breaker_trips=self.breaker_trips,
            breaker_skips=self.breaker_skips,
            faults_injected=self.faults_injected,
            pressure_events=self.pressure_events,
            degraded_batches=self.degraded_batches,
            cache_corruptions=self.cache_corruptions,
            unhandled_errors=self.unhandled_errors,
            closed_shed=self.closed_shed,
        )


def _counter_view(metric: str) -> property:
    def fget(self: ServingStats) -> int:
        return int(self._counter(metric).value)

    def fset(self: ServingStats, value: int) -> None:
        self._counter(metric).set(value)

    return property(fget, fset,
                    doc=f"View over the ``{metric}`` registry counter.")


for _attr, _metric in _COUNTERS.items():
    setattr(ServingStats, _attr, _counter_view(_metric))
del _attr, _metric
