"""The serving request model.

A request is one inference sample for one convolutional layer shape —
the unit the batcher coalesces.  Shapes are identified by a
:data:`ShapeKey`, the :class:`~repro.config.ConvConfig` 6-tuple with
the batch dimension removed: two requests share a key exactly when
they can ride in the same batch, and the plan cache keys on
``(ShapeKey, batch, device)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from ..config import ConvConfig

#: (input_size, filters, kernel_size, stride, channels, padding) —
#: a ConvConfig minus its batch dimension.
ShapeKey = Tuple[int, int, int, int, int, int]


def shape_key(config: ConvConfig) -> ShapeKey:
    """The batch-independent identity of a configuration."""
    return (config.input_size, config.filters, config.kernel_size,
            config.stride, config.channels, config.padding)


@lru_cache(maxsize=4096)
def batched_config(key: ShapeKey, batch: int) -> ConvConfig:
    """Rebuild a :class:`ConvConfig` from a shape key at ``batch``.

    Memoized: the serving hot path rebuilds the same few hundred
    (shape, bucketed batch) configurations millions of times, and
    ``ConvConfig`` is frozen, so sharing one instance per point is
    safe and skips the dataclass construction cost.
    """
    i, f, k, s, c, p = key
    return ConvConfig(batch=batch, input_size=i, filters=f, kernel_size=k,
                      stride=s, channels=c, padding=p)


@dataclass(frozen=True)
class Request:
    """One single-sample inference request.

    Attributes
    ----------
    rid:
        Monotonic request id (trace order).
    model / layer:
        Provenance labels ("VGG", "conv1_1") — reporting only.
    key:
        The layer shape; the batching identity.
    arrival_s:
        Simulated arrival time.
    timeout_s:
        Maximum queueing delay before the request is shed.
    """

    rid: int
    model: str
    layer: str
    key: ShapeKey
    arrival_s: float
    timeout_s: float

    @property
    def deadline_s(self) -> float:
        """Latest simulated time at which service may still start."""
        return self.arrival_s + self.timeout_s

    def expired(self, now_s: float) -> bool:
        return now_s > self.deadline_s

    def config(self, batch: int = 1) -> ConvConfig:
        return batched_config(self.key, batch)


@dataclass(frozen=True)
class Completion:
    """Record of one served request."""

    request: Request
    start_s: float
    finish_s: float
    batch: int            # padded batch the request rode in
    fill: int             # real requests in that batch
    implementation: str   # paper name of the dispatched implementation

    @property
    def latency_s(self) -> float:
        """Arrival-to-finish latency (queueing + service)."""
        return self.finish_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.start_s - self.request.arrival_s


def fast_request(rid: int, model: str, layer: str, key: ShapeKey,
                 arrival_s: float, timeout_s: float) -> Request:
    """Hot-path :class:`Request` constructor.

    A frozen dataclass pays one ``object.__setattr__`` per field; at
    hundreds of thousands of admissions per run that is a measurable
    slice of the event loop.  Building the instance dict directly is
    equivalent (same fields, same eq/hash) at a fraction of the cost.
    """
    r = Request.__new__(Request)
    # update() bypasses the frozen __setattr__ without per-field calls.
    r.__dict__.update(rid=rid, model=model, layer=layer, key=key,
                      arrival_s=arrival_s, timeout_s=timeout_s)
    return r


def fast_completion(request: Request, start_s: float, finish_s: float,
                    batch: int, fill: int, implementation: str) -> Completion:
    """Hot-path :class:`Completion` constructor (see
    :func:`fast_request`)."""
    c = Completion.__new__(Completion)
    c.__dict__.update(request=request, start_s=start_s, finish_s=finish_s,
                      batch=batch, fill=fill, implementation=implementation)
    return c
