"""Deterministic traffic generation.

Arrival traces are a pure function of a :class:`TrafficSpec` — the
seed drives a single :func:`repro.rng.make_rng` generator, virtual
time never touches the wall clock, and two runs with the same spec are
byte-identical.  Two arrival processes:

* ``poisson`` — homogeneous Poisson arrivals at ``rate_rps``;
* ``bursty`` — an on/off modulated Poisson: within each
  ``burst_period_s`` the first half runs at ``rate_rps *
  burst_factor``, the second at ``rate_rps / burst_factor`` (the
  spiky diurnal shape that stresses admission control).

Each arrival requests one layer shape drawn from the model mix —
real conv geometries of the paper's Fig. 2 networks (AlexNet, VGG,
GoogLeNet), spanning the regimes where different implementations win:
large-kernel stem layers, strided stems (FFT-infeasible), and deep
small-kernel 3x3 layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..config import ConvConfig
from ..rng import DEFAULT_SEED, make_rng
from .request import ShapeKey, shape_key

#: model -> [(layer name, batch-1 conv geometry)].  Shapes follow the
#: reference models in :mod:`repro.nn.models` (AlexNet 227 input, VGG
#: 224, GoogLeNet 224 with its 7x7/2 stem).  Each model contributes
#: its stem plus the deep small-spatial layers that make up the bulk
#: of a real network — the regime where batching amortizes best (a
#: 224x224 stem fills the simulated GPU even at batch 1; a 13x13
#: layer does not).
MODEL_SHAPES: Dict[str, List[Tuple[str, ConvConfig]]] = {
    "AlexNet": [
        ("conv1", ConvConfig(batch=1, input_size=227, filters=96,
                             kernel_size=11, stride=4, channels=3)),
        ("conv2", ConvConfig(batch=1, input_size=27, filters=256,
                             kernel_size=5, stride=1, channels=96, padding=2)),
        ("conv3", ConvConfig(batch=1, input_size=13, filters=384,
                             kernel_size=3, stride=1, channels=256, padding=1)),
        ("conv4", ConvConfig(batch=1, input_size=13, filters=384,
                             kernel_size=3, stride=1, channels=384, padding=1)),
        ("conv5", ConvConfig(batch=1, input_size=13, filters=256,
                             kernel_size=3, stride=1, channels=384, padding=1)),
    ],
    "VGG": [
        ("conv1_1", ConvConfig(batch=1, input_size=224, filters=64,
                               kernel_size=3, stride=1, channels=3, padding=1)),
        ("conv3_1", ConvConfig(batch=1, input_size=56, filters=256,
                               kernel_size=3, stride=1, channels=128, padding=1)),
        ("conv4_1", ConvConfig(batch=1, input_size=28, filters=512,
                               kernel_size=3, stride=1, channels=256, padding=1)),
        ("conv5_1", ConvConfig(batch=1, input_size=14, filters=512,
                               kernel_size=3, stride=1, channels=512, padding=1)),
    ],
    "GoogLeNet": [
        ("conv1", ConvConfig(batch=1, input_size=224, filters=64,
                             kernel_size=7, stride=2, channels=3, padding=3)),
        ("inception3a_3x3", ConvConfig(batch=1, input_size=28, filters=128,
                                       kernel_size=3, stride=1, channels=96,
                                       padding=1)),
        ("inception4a_3x3", ConvConfig(batch=1, input_size=14, filters=208,
                                       kernel_size=3, stride=1, channels=96,
                                       padding=1)),
        ("inception4a_5x5", ConvConfig(batch=1, input_size=14, filters=48,
                                       kernel_size=5, stride=1, channels=16,
                                       padding=2)),
        ("inception5a_3x3", ConvConfig(batch=1, input_size=7, filters=320,
                                       kernel_size=3, stride=1, channels=160,
                                       padding=1)),
    ],
}


@dataclass(frozen=True)
class Arrival:
    """One traced request arrival."""

    rid: int
    t_s: float
    model: str
    layer: str
    key: ShapeKey


@dataclass(frozen=True)
class TrafficSpec:
    """Parameters of one deterministic traffic trace."""

    duration_s: float = 60.0
    rate_rps: float = 200.0
    pattern: str = "poisson"          # 'poisson' | 'bursty'
    seed: int = DEFAULT_SEED
    models: Tuple[str, ...] = ("AlexNet", "VGG", "GoogLeNet")
    burst_factor: float = 4.0
    burst_period_s: float = 1.0

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {self.duration_s}")
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be positive, got {self.rate_rps}")
        if self.pattern not in ("poisson", "bursty"):
            raise ValueError(f"pattern must be 'poisson' or 'bursty', "
                             f"got {self.pattern!r}")
        if self.burst_factor < 1:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")
        for model in self.models:
            if model not in MODEL_SHAPES:
                raise KeyError(f"unknown model {model!r}; "
                               f"options: {sorted(MODEL_SHAPES)}")


def _instant_rate(spec: TrafficSpec, t_s: float) -> float:
    if spec.pattern == "poisson":
        return spec.rate_rps
    in_burst = (t_s % spec.burst_period_s) < spec.burst_period_s / 2
    return spec.rate_rps * spec.burst_factor if in_burst \
        else spec.rate_rps / spec.burst_factor


def generate_trace(spec: TrafficSpec = TrafficSpec()) -> List[Arrival]:
    """Materialise the arrival trace for ``spec`` (sorted by time)."""
    rng = make_rng(spec.seed)
    arrivals: List[Arrival] = []
    t = 0.0
    rid = 0
    while True:
        t += rng.exponential(1.0 / _instant_rate(spec, t))
        if t >= spec.duration_s:
            break
        model = spec.models[int(rng.integers(len(spec.models)))]
        layers = MODEL_SHAPES[model]
        layer, config = layers[int(rng.integers(len(layers)))]
        arrivals.append(Arrival(rid=rid, t_s=t, model=model, layer=layer,
                                key=shape_key(config)))
        rid += 1
    return arrivals


def trace_summary(trace: Sequence[Arrival], spec: TrafficSpec) -> str:
    """Human-readable description of a generated trace."""
    per_model: Dict[str, int] = {}
    for a in trace:
        per_model[a.model] = per_model.get(a.model, 0) + 1
    shapes = len({a.key for a in trace})
    lines = [
        f"trace: {len(trace)} arrivals over {spec.duration_s:.1f} simulated s "
        f"({spec.pattern}, seed {spec.seed})",
        f"mean offered rate     {len(trace) / spec.duration_s:10.1f} req/s",
        f"distinct layer shapes {shapes:6d}",
    ]
    for model in sorted(per_model):
        lines.append(f"  {model:12s} {per_model[model]:6d} requests")
    return "\n".join(lines)
