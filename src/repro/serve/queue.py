"""Bounded admission queue with timeout-based shedding.

Requests are kept in per-shape FIFO lanes (the batcher drains one lane
per batch) under a single global depth bound.  Two load-control
mechanisms, both counted:

* **admission rejection** — a request arriving at a full queue is
  refused outright (the client sees an immediate "server busy");
* **shedding** — an admitted request whose queueing delay exceeds its
  timeout is dropped before service (serving it late would be wasted
  work; real serving stacks shed exactly like this).

Shutdown is explicit: :meth:`AdmissionQueue.drain` hands every
outstanding request back to the caller (to be completed with a
``ServerClosed`` rejection — never silently dropped) and
:meth:`AdmissionQueue.close` additionally refuses all further traffic
with :class:`~repro.errors.ServerClosedError`.  A cluster replica
being *drained* (not shut down) calls ``drain(for_requeue=True)``
instead: the requests go back to the router for re-routing rather
than being rejected, so they are kept out of the shed accounting.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ServerClosedError
from .request import Request, ShapeKey


class AdmissionQueue:
    """FIFO-per-shape queue with one global depth bound.

    :meth:`shed_expired` is amortized O(1): the queue maintains a lazy
    lower bound on the earliest queued deadline (``_min_deadline``), so
    the per-iteration scheduler call returns immediately unless some
    deadline has actually passed.  Removals (``take``/``drain``) leave
    the bound stale-*low*, which is safe — at worst one wasted scan.
    Lanes are deadline-sorted in the common case (same timeout, arrival
    order), letting the scan pop expired heads in O(dropped); a lane
    only falls back to a full partition after an out-of-order insert
    (a cluster requeue of an older request).
    """

    def __init__(self, max_depth: int = 256):
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        # Ordered so iteration order (and thus tie-breaking between
        # equally old lanes) is deterministic: insertion order.
        self._lanes: "OrderedDict[ShapeKey, Deque[Request]]" = OrderedDict()
        self._depth = 0
        self._closed = False
        #: Lower bound on the earliest deadline of any queued request
        #: (stale-low after removals; +inf when provably empty).
        self._min_deadline = float("inf")
        #: Lanes whose deadline order was broken by an out-of-order
        #: insert; they shed by partition instead of head-popping.
        self._unsorted: set = set()
        #: Lazy min-heap of ``(head_arrival_s, lane_seq, key)`` entries,
        #: one pushed per head change.  Stale entries (the lane moved on)
        #: are discarded when they surface at the top, making
        #: :meth:`oldest_lane` amortized O(1) instead of an O(lanes)
        #: scan per batcher release.
        self._head_heap: List[Tuple[float, int, ShapeKey]] = []
        #: Lane creation order — the tie-break the heap shares with the
        #: OrderedDict scan it replaces (keys are never deleted, so
        #: creation order *is* iteration order).
        self._lane_seq: Dict[ShapeKey, int] = {}
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        #: Requests returned by drain()/close() — completed with a
        #: ServerClosed rejection by the caller, counted here.
        self.closed_out = 0

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    @property
    def is_closed(self) -> bool:
        return self._closed

    def lane_sizes(self) -> Dict[ShapeKey, int]:
        return {k: len(d) for k, d in self._lanes.items() if d}

    def lane_len(self, key: ShapeKey) -> int:
        """Depth of one lane (0 for an unknown key) — the batcher's
        per-release query, without materialising :meth:`lane_sizes`."""
        lane = self._lanes.get(key)
        return len(lane) if lane is not None else 0

    def oldest_lane(self) -> Optional[Tuple[ShapeKey, Request]]:
        """The lane whose head request has waited longest, as
        ``(key, head)``; ``None`` when empty.  Ties break by lane
        insertion order, keeping the selection deterministic.

        Served from the lazy head heap: the top entry is returned if it
        still describes its lane's current head, else discarded.  An
        entry whose arrival matches the current head is equivalent to a
        fresh one — selection depends only on (arrival, lane order) —
        so equal-arrival staleness cannot change the answer.
        """
        heap = self._head_heap
        lanes = self._lanes
        while heap:
            arrival, _seq, key = heap[0]
            lane = lanes.get(key)
            if lane and lane[0].arrival_s == arrival:
                return (key, lane[0])
            heapq.heappop(heap)
        return None

    def oldest_arrival(self) -> Optional[float]:
        head = self.oldest_lane()
        return None if head is None else head[1].arrival_s

    # -- mutation ----------------------------------------------------------

    def offer(self, request: Request) -> bool:
        """Admit ``request`` unless the queue is full.

        Raises :class:`ServerClosedError` after :meth:`close` — a
        closed server must refuse loudly, not enqueue into the void.
        """
        if self._closed:
            raise ServerClosedError(
                f"queue is closed; request {request.rid} refused")
        if self._depth >= self.max_depth:
            self.rejected += 1
            return False
        lane = self._lanes.get(request.key)
        if lane is None:
            lane = self._lanes[request.key] = deque()
            self._lane_seq[request.key] = len(self._lane_seq)
        deadline = request.arrival_s + request.timeout_s
        if lane:
            if deadline < lane[-1].arrival_s + lane[-1].timeout_s:
                self._unsorted.add(request.key)
        else:
            # Appending to an empty lane creates a new head.
            heapq.heappush(self._head_heap,
                           (request.arrival_s,
                            self._lane_seq[request.key], request.key))
        lane.append(request)
        if deadline < self._min_deadline:
            self._min_deadline = deadline
        self._depth += 1
        self.admitted += 1
        return True

    def take(self, key: ShapeKey, n: int) -> List[Request]:
        """Remove and return up to ``n`` requests from one lane."""
        lane = self._lanes.get(key)
        if lane is None:
            return []
        if len(lane) <= n:
            out = list(lane)
            lane.clear()
        elif n == 1:
            # batch=1 serving: one pop, no listcomp machinery.
            out = [lane.popleft()]
            heapq.heappush(self._head_heap,
                           (lane[0].arrival_s, self._lane_seq[key], key))
        else:
            popleft = lane.popleft
            out = [popleft() for _ in range(n)]
            # The lane has a new head; the old entry goes stale.
            heapq.heappush(self._head_heap,
                           (lane[0].arrival_s, self._lane_seq[key], key))
        self._depth -= len(out)
        return out

    def remove(self, key: ShapeKey, rid: int) -> Optional[Request]:
        """Remove one specific queued request by id (``None`` when it
        is not queued here).

        The hedging path: when one copy of a hedged request completes,
        the losing copy is cancelled out of its queue instead of being
        served twice.  O(lane) — lanes are short and cancellations
        rare.  The deadline bound is left stale-low (safe: at worst
        one wasted :meth:`shed_expired` scan) and a removed head
        pushes the lane's new head onto the lazy heap, exactly like
        :meth:`take`.
        """
        lane = self._lanes.get(key)
        if not lane:
            return None
        for i, request in enumerate(lane):
            if request.rid == rid:
                del lane[i]
                self._depth -= 1
                if i == 0 and lane:
                    heapq.heappush(self._head_heap,
                                   (lane[0].arrival_s,
                                    self._lane_seq[key], key))
                return request
        return None

    def push_front(self, key: ShapeKey, requests: List[Request]) -> None:
        """Return requests to the head of their lane, preserving order
        (used when an OOM forces a batch split)."""
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = deque()
            self._lane_seq[key] = len(self._lane_seq)
        for req in reversed(requests):
            lane.appendleft(req)
            deadline = req.arrival_s + req.timeout_s
            if deadline < self._min_deadline:
                self._min_deadline = deadline
        if requests:
            # A head insert can break the lane's deadline order.
            self._unsorted.add(key)
            heapq.heappush(self._head_heap,
                           (lane[0].arrival_s, self._lane_seq[key], key))
        self._depth += len(requests)

    def drain(self, for_requeue: bool = False) -> List[Request]:
        """Remove and return every outstanding request, in lane order.

        Two callers with different accounting:

        * **shutdown** (the default) — the caller owns completing each
          request with a ``ServerClosed`` rejection (the scheduler
          records them under the ``closed`` shed cause); the requests
          are counted in :attr:`closed_out` so nothing disappears from
          the accounting;
        * **requeue** (``for_requeue=True``) — a cluster replica being
          drained hands its in-flight requests back to the router for
          re-routing; the requests are *not* shed, so they stay out of
          :attr:`closed_out` (the replica's report records them under
          the ``requeued`` cause instead, and they complete elsewhere).
        """
        out: List[Request] = []
        for lane in self._lanes.values():
            out.extend(lane)
            lane.clear()
        self._depth = 0
        self._min_deadline = float("inf")
        self._unsorted.clear()
        self._head_heap.clear()
        if not for_requeue:
            self.closed_out += len(out)
        return out

    def close(self) -> List[Request]:
        """Drain the queue and refuse all further offers.

        Returns the outstanding requests exactly as :meth:`drain`
        does; calling :meth:`close` twice is a no-op returning ``[]``.
        """
        drained = self.drain() if not self._closed else []
        self._closed = True
        return drained

    def shed_expired(self, now_s: float) -> List[Request]:
        """Drop every admitted request whose deadline has passed.

        Amortized O(1): returns immediately unless ``now_s`` has moved
        past the tracked minimum deadline.  When it has, sorted lanes
        pop expired heads in O(dropped); only lanes marked unsorted by
        an out-of-order insert pay a full partition.
        """
        if now_s <= self._min_deadline:
            return []
        dropped: List[Request] = []
        min_deadline = float("inf")
        unsorted = self._unsorted
        for key, lane in self._lanes.items():
            if not lane:
                continue
            if key in unsorted:
                kept = deque(r for r in lane
                             if not now_s > r.arrival_s + r.timeout_s)
                if len(kept) != len(lane):
                    dropped.extend(r for r in lane
                                   if now_s > r.arrival_s + r.timeout_s)
                    lane.clear()
                    lane.extend(kept)
                if lane:
                    lane_min = min(r.arrival_s + r.timeout_s for r in lane)
                    if lane_min < min_deadline:
                        min_deadline = lane_min
                else:
                    unsorted.discard(key)
            else:
                while lane:
                    head = lane[0]
                    deadline = head.arrival_s + head.timeout_s
                    if now_s > deadline:
                        dropped.append(lane.popleft())
                    else:
                        if deadline < min_deadline:
                            min_deadline = deadline
                        break
        self._min_deadline = min_deadline
        if dropped:
            # A shedding pass already visited every lane; rebuilding the
            # head heap here both repairs the changed heads and sweeps
            # out accumulated stale entries.
            seq = self._lane_seq
            self._head_heap = [(lane[0].arrival_s, seq[k], k)
                               for k, lane in self._lanes.items() if lane]
            heapq.heapify(self._head_heap)
        self._depth -= len(dropped)
        self.shed += len(dropped)
        return dropped
