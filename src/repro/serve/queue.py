"""Bounded admission queue with timeout-based shedding.

Requests are kept in per-shape FIFO lanes (the batcher drains one lane
per batch) under a single global depth bound.  Two load-control
mechanisms, both counted:

* **admission rejection** — a request arriving at a full queue is
  refused outright (the client sees an immediate "server busy");
* **shedding** — an admitted request whose queueing delay exceeds its
  timeout is dropped before service (serving it late would be wasted
  work; real serving stacks shed exactly like this).

Shutdown is explicit: :meth:`AdmissionQueue.drain` hands every
outstanding request back to the caller (to be completed with a
``ServerClosed`` rejection — never silently dropped) and
:meth:`AdmissionQueue.close` additionally refuses all further traffic
with :class:`~repro.errors.ServerClosedError`.  A cluster replica
being *drained* (not shut down) calls ``drain(for_requeue=True)``
instead: the requests go back to the router for re-routing rather
than being rejected, so they are kept out of the shed accounting.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import ServerClosedError
from .request import Request, ShapeKey


class AdmissionQueue:
    """FIFO-per-shape queue with one global depth bound."""

    def __init__(self, max_depth: int = 256):
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        # Ordered so iteration order (and thus tie-breaking between
        # equally old lanes) is deterministic: insertion order.
        self._lanes: "OrderedDict[ShapeKey, Deque[Request]]" = OrderedDict()
        self._depth = 0
        self._closed = False
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        #: Requests returned by drain()/close() — completed with a
        #: ServerClosed rejection by the caller, counted here.
        self.closed_out = 0

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self._depth

    @property
    def is_closed(self) -> bool:
        return self._closed

    def lane_sizes(self) -> Dict[ShapeKey, int]:
        return {k: len(d) for k, d in self._lanes.items() if d}

    def oldest_lane(self) -> Optional[Tuple[ShapeKey, Request]]:
        """The lane whose head request has waited longest, as
        ``(key, head)``; ``None`` when empty.  Ties break by lane
        insertion order, keeping the scan deterministic."""
        best: Optional[Tuple[ShapeKey, Request]] = None
        for key, lane in self._lanes.items():
            if not lane:
                continue
            if best is None or lane[0].arrival_s < best[1].arrival_s:
                best = (key, lane[0])
        return best

    def oldest_arrival(self) -> Optional[float]:
        head = self.oldest_lane()
        return None if head is None else head[1].arrival_s

    # -- mutation ----------------------------------------------------------

    def offer(self, request: Request) -> bool:
        """Admit ``request`` unless the queue is full.

        Raises :class:`ServerClosedError` after :meth:`close` — a
        closed server must refuse loudly, not enqueue into the void.
        """
        if self._closed:
            raise ServerClosedError(
                f"queue is closed; request {request.rid} refused")
        if self._depth >= self.max_depth:
            self.rejected += 1
            return False
        lane = self._lanes.get(request.key)
        if lane is None:
            lane = self._lanes[request.key] = deque()
        lane.append(request)
        self._depth += 1
        self.admitted += 1
        return True

    def take(self, key: ShapeKey, n: int) -> List[Request]:
        """Remove and return up to ``n`` requests from one lane."""
        lane = self._lanes.get(key)
        if lane is None:
            return []
        out: List[Request] = []
        while lane and len(out) < n:
            out.append(lane.popleft())
        self._depth -= len(out)
        return out

    def push_front(self, key: ShapeKey, requests: List[Request]) -> None:
        """Return requests to the head of their lane, preserving order
        (used when an OOM forces a batch split)."""
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = deque()
        for req in reversed(requests):
            lane.appendleft(req)
        self._depth += len(requests)

    def drain(self, for_requeue: bool = False) -> List[Request]:
        """Remove and return every outstanding request, in lane order.

        Two callers with different accounting:

        * **shutdown** (the default) — the caller owns completing each
          request with a ``ServerClosed`` rejection (the scheduler
          records them under the ``closed`` shed cause); the requests
          are counted in :attr:`closed_out` so nothing disappears from
          the accounting;
        * **requeue** (``for_requeue=True``) — a cluster replica being
          drained hands its in-flight requests back to the router for
          re-routing; the requests are *not* shed, so they stay out of
          :attr:`closed_out` (the replica's report records them under
          the ``requeued`` cause instead, and they complete elsewhere).
        """
        out: List[Request] = []
        for lane in self._lanes.values():
            out.extend(lane)
            lane.clear()
        self._depth = 0
        if not for_requeue:
            self.closed_out += len(out)
        return out

    def close(self) -> List[Request]:
        """Drain the queue and refuse all further offers.

        Returns the outstanding requests exactly as :meth:`drain`
        does; calling :meth:`close` twice is a no-op returning ``[]``.
        """
        drained = self.drain() if not self._closed else []
        self._closed = True
        return drained

    def shed_expired(self, now_s: float) -> List[Request]:
        """Drop every admitted request whose deadline has passed."""
        dropped: List[Request] = []
        for lane in self._lanes.values():
            kept = deque(r for r in lane if not r.expired(now_s))
            if len(kept) != len(lane):
                dropped.extend(r for r in lane if r.expired(now_s))
                lane.clear()
                lane.extend(kept)
        self._depth -= len(dropped)
        self.shed += len(dropped)
        return dropped
