"""LRU plan cache.

Ranking the seven implementations for one configuration means seven
simulated profiles — fine offline, far too slow per batch.  Since the
ranking is a pure function of ``(shape, batch, device)``, the cache
memoizes the advisor's ranking per key — a tuple of
:class:`~repro.core.advisor.RankedPlan`, fastest first, so the
resilient dispatcher can fall back down the same cached ordering —
with LRU eviction, and the batcher's power-of-two bucketing keeps the
key space tiny, so steady-state dispatch is a dictionary hit.

This is the *plan-level* tier only.  The per-implementation evaluation
records underneath a ranking live in the process-wide
:class:`~repro.core.evalcache.EvalCache` (the advisor routes every
``evaluate`` through it), so a plan-cache miss whose points were
already touched by a figure pipeline — or by another server — still
skips the simulation and only re-ranks; this cache's former private
memoization of those evaluations is retired onto that shared store.

Infeasible configurations are cached too (as ``None``): re-discovering
"nothing fits" per batch would be the same wasted ranking.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Hashable, Optional

from ..core.advisor import RankedPlan

#: Sentinel distinguishing "not cached" from a cached None (infeasible).
_MISSING = object()


class PlanCache:
    """LRU map from hashable plan keys to :class:`RankedPlan` (or
    ``None`` for cached infeasibility), with hit/miss/eviction
    counters."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Optional[RankedPlan]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.corruptions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def get(self, key: Hashable):
        """Cached value or the module sentinel; counts hit/miss and
        refreshes recency on hit."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, plan: Optional[RankedPlan]) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = plan
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get_or_compute(self, key: Hashable,
                       compute: Callable[[], Optional[RankedPlan]]
                       ) -> Optional[RankedPlan]:
        """The dispatch entry point: one lookup, ranking only on miss."""
        value = self.get(key)
        if value is not _MISSING:
            return value
        plan = compute()
        self.put(key, plan)
        return plan

    def corrupt(self, n: int) -> int:
        """Invalidate up to ``n`` entries, least recently used first.

        The fault-injection plane's "plan-cache corruption" event:
        dropping an entry is the safe model of corruption — the next
        dispatch of that key re-ranks (a miss) rather than executing a
        corrupted plan.  Eviction order is the LRU order, so the effect
        is deterministic.  Returns how many entries were dropped.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        dropped = 0
        while self._entries and dropped < n:
            self._entries.popitem(last=False)
            dropped += 1
        self.corruptions += dropped
        return dropped

    def stats(self) -> Dict[str, float]:
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "hit_rate": self.hit_rate,
        }
