"""Deterministic random-number helpers.

All stochastic pieces of the package (synthetic workloads, weight
initialisation, dropout masks) draw from :func:`make_rng` so that every
experiment, test and example is reproducible from a single integer
seed.  Following the NumPy guidance in the HPC guides, we use the
modern ``Generator`` API rather than the legacy global state.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Default seed used across examples and benchmarks.
DEFAULT_SEED = 20160816  # ICPP 2016 conference date.

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Parameters
    ----------
    seed:
        ``None`` for the package default seed, an ``int`` seed, or an
        existing ``Generator`` which is passed through unchanged (so
        functions can accept either form).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    if not isinstance(seed, (int, np.integer)):
        raise TypeError(f"seed must be None, int, or Generator, got {type(seed)!r}")
    return np.random.default_rng(int(seed))


def spawn(rng: np.random.Generator, n: int) -> list:
    """Split ``rng`` into ``n`` independent child generators.

    Used when a workload wants per-epoch or per-worker streams that do
    not perturb each other's sequences.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
