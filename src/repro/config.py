"""Convolution-layer configurations and the paper's parameter space.

The paper organises a convolutional layer's benchmark parameters into a
5-tuple ``(b, i, f, k, s)`` — mini-batch size, (square) input size,
filter count, (square) kernel size and stride — following Mathieu et
al. [35].  :class:`ConvConfig` extends the tuple with the input channel
count ``c`` and zero padding ``p`` (the paper holds both fixed per
experiment; channels are needed to compute FLOPs and memory).

This module also defines:

* :data:`BASE_CONFIG` — the paper's base 5-tuple ``(64, 128, 64, 11, 1)``
  used for Fig. 3, Fig. 4 and Fig. 5;
* :data:`TABLE1_CONFIGS` — the five Conv1..Conv5 layers of Table I used
  for Fig. 6 and Fig. 7;
* the five one-parameter sweep generators of section IV-B.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Tuple

from .errors import ShapeError
from .tensor.shapes import conv_output_size


@dataclass(frozen=True)
class ConvConfig:
    """A single convolutional-layer benchmark configuration.

    Attributes
    ----------
    batch:
        Mini-batch size ``b``.
    input_size:
        Height and width ``i`` of the (square) input feature map.
    filters:
        Number of output feature maps ``f``.
    kernel_size:
        Height and width ``k`` of the (square) filter.
    stride:
        Convolution stride ``s`` (same in both dimensions).
    channels:
        Number of input feature maps ``c``.  The paper leaves this
        implicit; defaults follow the convnet-benchmarks suite.
    padding:
        Zero padding ``p`` on each border.  The paper benchmarks
        unpadded ("valid") convolutions, so the default is 0.
    """

    batch: int
    input_size: int
    filters: int
    kernel_size: int
    stride: int = 1
    channels: int = 3
    padding: int = 0

    def __post_init__(self) -> None:
        for name in ("batch", "input_size", "filters", "kernel_size", "stride", "channels"):
            v = getattr(self, name)
            if not isinstance(v, (int,)) or isinstance(v, bool):
                raise ShapeError(f"{name} must be an int, got {v!r}")
            if v <= 0:
                raise ShapeError(f"{name} must be positive, got {v}")
        if not isinstance(self.padding, int) or isinstance(self.padding, bool):
            raise ShapeError(f"padding must be an int, got {self.padding!r}")
        if self.padding < 0:
            raise ShapeError(f"padding must be non-negative, got {self.padding}")
        if self.kernel_size > self.input_size + 2 * self.padding:
            raise ShapeError(
                f"kernel {self.kernel_size} exceeds padded input "
                f"{self.input_size + 2 * self.padding}"
            )

    # -- derived geometry -------------------------------------------------

    @property
    def output_size(self) -> int:
        """Spatial size ``o`` of each output feature map."""
        return conv_output_size(self.input_size, self.kernel_size, self.stride, self.padding)

    @property
    def tuple5(self) -> Tuple[int, int, int, int, int]:
        """The paper's ``(b, i, f, k, s)`` 5-tuple."""
        return (self.batch, self.input_size, self.filters, self.kernel_size, self.stride)

    @property
    def input_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape of the input batch."""
        return (self.batch, self.channels, self.input_size, self.input_size)

    @property
    def weight_shape(self) -> Tuple[int, int, int, int]:
        """``(f, c, k, k)`` filter-bank shape."""
        return (self.filters, self.channels, self.kernel_size, self.kernel_size)

    @property
    def output_shape(self) -> Tuple[int, int, int, int]:
        """NCHW shape of the output batch."""
        o = self.output_size
        return (self.batch, self.filters, o, o)

    # -- workload arithmetic ----------------------------------------------

    @property
    def forward_macs(self) -> int:
        """Multiply-accumulate count of one *forward* pass (direct
        algorithm): ``b * f * c * o^2 * k^2``."""
        o = self.output_size
        return (
            self.batch * self.filters * self.channels * o * o
            * self.kernel_size * self.kernel_size
        )

    @property
    def forward_flops(self) -> int:
        """FLOPs of one forward pass (2 per MAC)."""
        return 2 * self.forward_macs

    @property
    def training_flops(self) -> int:
        """FLOPs of one training iteration.

        One iteration = forward + gradient w.r.t. input + gradient
        w.r.t. weights; each of the two backward passes has the same
        direct-algorithm MAC count as the forward pass.
        """
        return 3 * self.forward_flops

    def scaled(self, **changes) -> "ConvConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvConfig(b={self.batch}, i={self.input_size}, f={self.filters}, "
            f"k={self.kernel_size}, s={self.stride}, c={self.channels}, p={self.padding})"
        )


#: The paper's base configuration for Figs. 3-5: (64, 128, 64, 11, 1).
#: Channels = 3: the sweeps feed raw colour images (the paper's memory
#: ceilings — cuda-convnet2 topping out near 2 GB and fbfft near 11 GB
#: at batch 512 — are only consistent with 3 input channels).
BASE_CONFIG = ConvConfig(batch=64, input_size=128, filters=64, kernel_size=11,
                         stride=1, channels=3)

#: Table I: the five representative configurations used for detailed
#: profiling (Fig. 6, Fig. 7).  Channel counts follow convnet-benchmarks
#: (the paper omits them); see DESIGN.md section 2.
TABLE1_CONFIGS: Dict[str, ConvConfig] = {
    "Conv1": ConvConfig(batch=128, input_size=128, filters=96, kernel_size=11,
                        stride=1, channels=3),
    "Conv2": ConvConfig(batch=128, input_size=128, filters=96, kernel_size=3,
                        stride=1, channels=64),
    "Conv3": ConvConfig(batch=128, input_size=32, filters=128, kernel_size=9,
                        stride=1, channels=64),
    "Conv4": ConvConfig(batch=128, input_size=16, filters=128, kernel_size=7,
                        stride=1, channels=128),
    "Conv5": ConvConfig(batch=128, input_size=13, filters=384, kernel_size=3,
                        stride=1, channels=384),
}


# -- the five sweeps of section IV-B --------------------------------------

def sweep_batch(start: int = 32, stop: int = 512, step: int = 32) -> Iterator[ConvConfig]:
    """Fig. 3(a)/5(a): vary mini-batch, fix (b, 128, 64, 11, 1)."""
    for b in range(start, stop + 1, step):
        yield BASE_CONFIG.scaled(batch=b)


def sweep_input(start: int = 32, stop: int = 256, step: int = 16) -> Iterator[ConvConfig]:
    """Fig. 3(b)/5(b): vary input size, fix (64, i, 64, 11, 1)."""
    for i in range(start, stop + 1, step):
        yield BASE_CONFIG.scaled(input_size=i)


def sweep_filters(start: int = 32, stop: int = 512, step: int = 16) -> Iterator[ConvConfig]:
    """Fig. 3(c)/5(c): vary filter count, fix (64, 128, f, 11, 1)."""
    for f in range(start, stop + 1, step):
        yield BASE_CONFIG.scaled(filters=f)


def sweep_kernel(start: int = 2, stop: int = 13, step: int = 1) -> Iterator[ConvConfig]:
    """Fig. 3(d)/5(d): vary kernel size, fix (64, 128, 64, k, 1)."""
    for k in range(start, stop + 1, step):
        yield BASE_CONFIG.scaled(kernel_size=k)


def sweep_stride(start: int = 1, stop: int = 4, step: int = 1) -> Iterator[ConvConfig]:
    """Fig. 3(e)/5(e): vary stride, fix (64, 128, 64, 11, s)."""
    for s in range(start, stop + 1, step):
        yield BASE_CONFIG.scaled(stride=s)


#: Sweep registry keyed by the parameter being varied; used by the
#: runtime/memory comparison harnesses and their benches.
SWEEPS = {
    "batch": sweep_batch,
    "input": sweep_input,
    "filters": sweep_filters,
    "kernel": sweep_kernel,
    "stride": sweep_stride,
}


def sweep_configs(name: str) -> List[ConvConfig]:
    """Materialise a named sweep (one of :data:`SWEEPS`)."""
    try:
        gen = SWEEPS[name]
    except KeyError:
        raise KeyError(f"unknown sweep {name!r}; options: {sorted(SWEEPS)}") from None
    return list(gen())
