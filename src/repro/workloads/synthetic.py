"""Random tensors shaped by benchmark configurations."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..config import ConvConfig
from ..errors import ShapeError
from ..rng import RngLike, make_rng


def conv_tensors(config: ConvConfig, rng: RngLike = None,
                 dtype=np.float32) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(input, weights, bias) for one conv-layer benchmark config."""
    gen = make_rng(rng)
    x = gen.standard_normal(config.input_shape).astype(dtype)
    w = (gen.standard_normal(config.weight_shape)
         / np.sqrt(config.channels * config.kernel_size ** 2)).astype(dtype)
    bias = gen.standard_normal(config.filters).astype(dtype) * 0.1
    return x, w, bias


def random_batch(batch: int, channels: int, size: int, classes: int = 10,
                 rng: RngLike = None,
                 dtype=np.float32) -> Tuple[np.ndarray, np.ndarray]:
    """A random image batch with random labels."""
    if batch <= 0 or channels <= 0 or size <= 0 or classes <= 0:
        raise ShapeError("batch, channels, size and classes must be positive")
    gen = make_rng(rng)
    x = gen.standard_normal((batch, channels, size, size)).astype(dtype)
    labels = gen.integers(0, classes, size=batch)
    return x, labels


def batch_stream(batches: int, batch: int, channels: int, size: int,
                 classes: int = 10, rng: RngLike = None
                 ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """A finite stream of random batches (for trainer smoke runs)."""
    if batches <= 0:
        raise ShapeError(f"batches must be positive, got {batches}")
    gen = make_rng(rng)
    for _ in range(batches):
        yield random_batch(batch, channels, size, classes, gen)
