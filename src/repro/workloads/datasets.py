"""Dataset descriptors from the paper's introduction.

Section I sizes the training-cost argument with three corpora: MNIST
(60k train / 10k test, 28x28 grey), CIFAR-10 (50k/10k, 32x32 colour)
and ImageNet (1.2M+ high-resolution).  These descriptors carry those
published statistics and can synthesise shape-compatible random
batches for capacity and throughput estimates — the images are noise,
the geometry is real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import RngLike, make_rng


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of an image-classification corpus."""

    name: str
    train_images: int
    test_images: int
    channels: int
    size: int
    classes: int

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return (self.channels, self.size, self.size)

    @property
    def bytes_per_image(self) -> int:
        return self.channels * self.size * self.size * 4

    def epoch_iterations(self, batch: int) -> int:
        """Training iterations per epoch at a given batch size."""
        if batch <= 0:
            raise ShapeError(f"batch must be positive, got {batch}")
        return -(-self.train_images // batch)

    def synthetic_batch(self, batch: int, rng: RngLike = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """A random batch with this corpus's geometry."""
        if batch <= 0:
            raise ShapeError(f"batch must be positive, got {batch}")
        gen = make_rng(rng)
        x = gen.standard_normal((batch,) + self.image_shape).astype(np.float32)
        y = gen.integers(0, self.classes, size=batch)
        return x, y


MNIST = DatasetSpec("MNIST", 60_000, 10_000, 1, 28, 10)
CIFAR10 = DatasetSpec("CIFAR-10", 50_000, 10_000, 3, 32, 10)
IMAGENET = DatasetSpec("ImageNet", 1_281_167, 50_000, 3, 224, 1000)

DATASETS: Dict[str, DatasetSpec] = {
    d.name: d for d in (MNIST, CIFAR10, IMAGENET)
}
