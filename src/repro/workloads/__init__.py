"""Synthetic workload generators.

The paper's measurements need input *shapes*, not labelled data — but
the training examples do need something learnable.  This subpackage
provides both: random conv-layer tensors shaped by a
:class:`~repro.config.ConvConfig`, dataset descriptors for the corpora
the paper's introduction cites (MNIST, CIFAR-10, ImageNet), and a
procedural digit dataset that a LeNet-5 can actually learn.
"""

from .synthetic import conv_tensors, random_batch, batch_stream
from .digits import digit_image, make_digits, DigitDataset
from .datasets import DatasetSpec, MNIST, CIFAR10, IMAGENET, DATASETS
from .augment import (Compose, augmented_batches, cutout, gaussian_noise,
                      random_crop, random_flip)

__all__ = [
    "conv_tensors",
    "random_batch",
    "batch_stream",
    "digit_image",
    "make_digits",
    "DigitDataset",
    "DatasetSpec",
    "MNIST",
    "CIFAR10",
    "IMAGENET",
    "DATASETS",
    "Compose",
    "augmented_batches",
    "cutout",
    "gaussian_noise",
    "random_crop",
    "random_flip",
]
