"""Procedural digit images — an offline stand-in for MNIST.

The paper's introduction motivates CNN training cost with MNIST-style
digit recognition (LeNet-5, section I).  MNIST itself is not available
offline, so this module renders the ten digits from seven-segment
masks on a 32x32 canvas and perturbs them (shift, scaling, noise) so a
LeNet-5 genuinely has to *learn* the classes.  The substitution
preserves what matters for the example: a ten-class image problem a
small CNN solves to >90 % accuracy in a few hundred iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import RngLike, make_rng

#: Which of the 7 segments (a..g) each digit lights:
#:    aaaa
#:   f    b
#:    gggg
#:   e    c
#:    dddd
_SEGMENTS = {
    0: "abcdef",
    1: "bc",
    2: "abged",
    3: "abgcd",
    4: "fgbc",
    5: "afgcd",
    6: "afgedc",
    7: "abc",
    8: "abcdefg",
    9: "abcfgd",
}

#: Segment rectangles in a 16x10 glyph box: (r0, r1, c0, c1).
_BOXES = {
    "a": (0, 2, 1, 9),
    "b": (1, 8, 8, 10),
    "c": (8, 15, 8, 10),
    "d": (14, 16, 1, 9),
    "e": (8, 15, 0, 2),
    "f": (1, 8, 0, 2),
    "g": (7, 9, 1, 9),
}


def digit_glyph(digit: int) -> np.ndarray:
    """The 16x10 binary glyph of one digit."""
    if digit not in _SEGMENTS:
        raise ShapeError(f"digit must be 0-9, got {digit}")
    glyph = np.zeros((16, 10))
    for seg in _SEGMENTS[digit]:
        r0, r1, c0, c1 = _BOXES[seg]
        glyph[r0:r1, c0:c1] = 1.0
    return glyph


def digit_image(digit: int, rng: RngLike = None, size: int = 32,
                noise: float = 0.15) -> np.ndarray:
    """One perturbed ``(1, size, size)`` rendering of a digit."""
    if size < 24:
        raise ShapeError(f"canvas must be at least 24, got {size}")
    gen = make_rng(rng)
    glyph = digit_glyph(digit)
    # Stretch the 16x10 glyph to 16x20 and place it near the centre
    # with a few pixels of jitter — enough variation that the classes
    # must be *learned*, small enough that a LeNet-5 masters it in a
    # handful of epochs.
    big = np.kron(glyph, np.ones((1, 2)))
    h, w = big.shape
    canvas = np.zeros((size, size))
    r0 = (size - h) // 2
    c0 = (size - w) // 2
    jitter = 3
    r = int(np.clip(r0 + gen.integers(-jitter, jitter + 1), 0, size - h))
    c = int(np.clip(c0 + gen.integers(-jitter, jitter + 1), 0, size - w))
    canvas[r:r + h, c:c + w] = big
    # Amplitude jitter plus white noise.
    canvas *= gen.uniform(0.8, 1.2)
    canvas += gen.standard_normal((size, size)) * noise
    return canvas[None, :, :].astype(np.float32)


def make_digits(n: int, rng: RngLike = None, size: int = 32,
                noise: float = 0.15) -> Tuple[np.ndarray, np.ndarray]:
    """``n`` labelled digit images, shapes ``(n, 1, size, size)`` and
    ``(n,)``."""
    if n <= 0:
        raise ShapeError(f"n must be positive, got {n}")
    gen = make_rng(rng)
    labels = gen.integers(0, 10, size=n)
    images = np.stack([digit_image(int(d), gen, size, noise) for d in labels])
    return images, labels


@dataclass
class DigitDataset:
    """A fixed train/test split of procedural digits."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray

    @classmethod
    def generate(cls, train: int = 512, test: int = 128, rng: RngLike = None,
                 size: int = 32, noise: float = 0.15) -> "DigitDataset":
        gen = make_rng(rng)
        tx, ty = make_digits(train, gen, size, noise)
        vx, vy = make_digits(test, gen, size, noise)
        return cls(tx, ty, vx, vy)

    def batches(self, batch_size: int, epochs: int = 1,
                rng: RngLike = None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Shuffled mini-batches over the training split."""
        if batch_size <= 0:
            raise ShapeError(f"batch_size must be positive, got {batch_size}")
        gen = make_rng(rng)
        n = len(self.train_y)
        for _ in range(epochs):
            order = gen.permutation(n)
            for start in range(0, n - batch_size + 1, batch_size):
                idx = order[start:start + batch_size]
                yield self.train_x[idx], self.train_y[idx]
