"""Data augmentation for the training substrate.

The AlexNet-era recipe — random crops, horizontal flips, additive
noise — implemented as composable NumPy transforms over NCHW batches.
Used by the digit training example to demonstrate regularisation with
the same substrate the paper's models would have trained on.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import RngLike, make_rng

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def random_crop(size: int, padding: int = 4) -> Transform:
    """Pad reflectively and crop a random ``size x size`` window per
    image (the CIFAR training recipe)."""
    if size <= 0 or padding < 0:
        raise ShapeError("invalid crop parameters")

    def fn(x: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        if x.shape[2] < size or x.shape[3] < size:
            raise ShapeError(
                f"images {x.shape[2:]} smaller than crop {size}")
        padded = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                            (padding, padding)), mode="reflect")
        b = x.shape[0]
        out = np.empty((b, x.shape[1], size, size), dtype=x.dtype)
        max_r = padded.shape[2] - size
        max_c = padded.shape[3] - size
        rows = gen.integers(0, max_r + 1, size=b)
        cols = gen.integers(0, max_c + 1, size=b)
        for i in range(b):
            out[i] = padded[i, :, rows[i]:rows[i] + size,
                            cols[i]:cols[i] + size]
        return out

    return fn


def random_flip(p: float = 0.5) -> Transform:
    """Horizontal flip with probability ``p`` per image."""
    if not (0.0 <= p <= 1.0):
        raise ShapeError(f"p must be in [0,1], got {p}")

    def fn(x: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        out = x.copy()
        mask = gen.random(x.shape[0]) < p
        out[mask] = out[mask, :, :, ::-1]
        return out

    return fn


def gaussian_noise(sigma: float = 0.05) -> Transform:
    """Additive white noise."""
    if sigma < 0:
        raise ShapeError(f"sigma must be >= 0, got {sigma}")

    def fn(x: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        if sigma == 0:
            return x
        return x + gen.standard_normal(x.shape).astype(x.dtype) * sigma

    return fn


def cutout(holes: int = 1, length: int = 8) -> Transform:
    """Zero out random square patches (DeVries & Taylor)."""
    if holes <= 0 or length <= 0:
        raise ShapeError("holes and length must be positive")

    def fn(x: np.ndarray, gen: np.random.Generator) -> np.ndarray:
        out = x.copy()
        b, _, h, w = x.shape
        for i in range(b):
            for _ in range(holes):
                r = int(gen.integers(0, h))
                c = int(gen.integers(0, w))
                r0, r1 = max(r - length // 2, 0), min(r + length // 2, h)
                c0, c1 = max(c - length // 2, 0), min(c + length // 2, w)
                out[i, :, r0:r1, c0:c1] = 0.0
        return out

    return fn


class Compose:
    """Apply transforms in order with one deterministic stream."""

    def __init__(self, transforms: Sequence[Transform], rng: RngLike = None):
        if not transforms:
            raise ShapeError("Compose needs at least one transform")
        self.transforms: List[Transform] = list(transforms)
        self._gen = make_rng(rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"expected NCHW batch, got ndim={x.ndim}")
        for t in self.transforms:
            x = t(x, self._gen)
        return x


def augmented_batches(batches, transforms: Sequence[Transform],
                      rng: RngLike = None):
    """Wrap a (x, y) batch iterator with augmentation."""
    compose = Compose(transforms, rng)
    for x, y in batches:
        yield compose(x), y
