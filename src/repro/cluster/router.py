"""Pluggable request routing for the serving fleet.

The router picks a replica for every arriving request, considering
only *routable* replicas (alive, not draining).  Four policies, all
deterministic — two runs with the same seed make the same sequence of
decisions, which is what the cluster determinism tests assert:

* ``round-robin`` — a rotating cursor over the routable set.  The
  baseline: fair by count, blind to load and cache state.
* ``least-loaded`` — the replica with the smallest
  ``(queue depth, busy seconds)`` load tuple; ties break on the
  lowest index.  A full-information policy real routers approximate.
* ``p2c`` — power of two choices: draw two distinct replicas from a
  seeded RNG, send to the less loaded.  Near-least-loaded balance at
  O(1) cost (the classic Mitzenmacher result), and the only policy
  that consumes randomness — from its own generator, so routing
  noise never perturbs a fault plan's RNG stream or vice versa.
* ``shape-affinity`` — pin each layer shape to the replica that first
  served it (chosen least-loaded at first sight), so repeated shapes
  land on warm plan caches.  Exploits the plan cache's
  ``(shape, batch, device)`` keying: a shape's plans are ranked once
  per replica, then every later request of that shape is a cache hit
  — the test suite asserts this beats round-robin's hit rate on a
  many-shape trace.  Pins move (least-loaded again) when their
  replica drains or dies.
* ``device-affinity`` — shape-affinity for heterogeneous fleets: the
  first sight of a shape ranks the fleet's *distinct devices* through
  the shared advisor and pins the shape to the winning device's
  least-loaded replica.  On a homogeneous fleet (or without an
  advisor) every choice degrades to shape-affinity's least-loaded
  first sight, decision for decision.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rng import make_rng
from ..serve.request import Request, ShapeKey, batched_config
from .replica import Replica

#: Router policy names accepted by :func:`make_policy` and the CLI.
POLICIES = ("round-robin", "least-loaded", "p2c", "shape-affinity",
            "device-affinity")


def _least_loaded(replicas: Sequence[Replica], now_s: float) -> Replica:
    """Smallest load tuple, ties to the lowest index (deterministic)."""
    return min(replicas, key=lambda r: (r.load(now_s), r.index))


class RoutingPolicy:
    """Base: choose one replica from a non-empty routable set."""

    name = "abstract"

    def choose(self, replicas: Sequence[Replica], request: Request,
               now_s: float) -> Replica:
        raise NotImplementedError


class RoundRobin(RoutingPolicy):
    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, replicas: Sequence[Replica], request: Request,
               now_s: float) -> Replica:
        chosen = replicas[self._cursor % len(replicas)]
        self._cursor += 1
        return chosen


class LeastLoaded(RoutingPolicy):
    name = "least-loaded"

    def choose(self, replicas: Sequence[Replica], request: Request,
               now_s: float) -> Replica:
        return _least_loaded(replicas, now_s)


class PowerOfTwo(RoutingPolicy):
    """Two seeded draws, keep the less loaded (ties to lower index)."""

    name = "p2c"

    def __init__(self, seed: int) -> None:
        self._rng = make_rng(seed)

    def choose(self, replicas: Sequence[Replica], request: Request,
               now_s: float) -> Replica:
        n = len(replicas)
        if n == 1:
            return replicas[0]
        i = int(self._rng.integers(n))
        j = int(self._rng.integers(n - 1))
        if j >= i:
            j += 1
        return _least_loaded([replicas[i], replicas[j]], now_s)


class ShapeAffinity(RoutingPolicy):
    name = "shape-affinity"

    def __init__(self) -> None:
        #: shape -> pinned replica index.
        self.pins: Dict[ShapeKey, int] = {}

    def choose(self, replicas: Sequence[Replica], request: Request,
               now_s: float) -> Replica:
        pinned = self.pins.get(request.key)
        if pinned is not None:
            for r in replicas:
                if r.index == pinned:
                    return r
        chosen = _least_loaded(replicas, now_s)
        self.pins[request.key] = chosen.index
        return chosen


class DeviceAffinity(RoutingPolicy):
    """Shape-affinity that ranks the fleet's *devices* per shape.

    First sight of a shape asks the shared advisor to rank each
    distinct device present among the eligible replicas (at batch 1 —
    a shape proxy; the per-replica plan cache still ranks the real
    padded batch at dispatch) and pins the shape to the winning
    device's least-loaded replica.  The device ranking is memoized per
    ``(shape, devices-present)``, so fleet-membership changes (drains,
    deaths, scale-ups) re-rank deterministically while the common case
    costs one dict lookup.  Without an advisor, or when every eligible
    replica runs the same device, this is exactly shape-affinity.
    """

    name = "device-affinity"

    def __init__(self, advisor=None) -> None:
        self._advisor = advisor
        #: shape -> pinned replica index (as in shape-affinity).
        self.pins: Dict[ShapeKey, int] = {}
        #: (shape, sorted device names) -> device names, fastest first.
        self._rankings: Dict[Tuple[ShapeKey, Tuple[str, ...]],
                             Tuple[str, ...]] = {}

    def _rank_devices(self, key: ShapeKey,
                      replicas: Sequence[Replica]) -> Tuple[str, ...]:
        specs = {}
        for r in replicas:
            device = r.server.config.device
            specs.setdefault(device.name, device)
        present = tuple(sorted(specs))
        cached = self._rankings.get((key, present))
        if cached is not None:
            return cached
        config = batched_config(key, 1)
        timed = []
        for name in present:
            plan = self._advisor.plan(config, device=specs[name])
            timed.append((plan.time_s if plan is not None else float("inf"),
                          name))
        ranking = tuple(name for _, name in sorted(timed))
        self._rankings[(key, present)] = ranking
        return ranking

    def choose(self, replicas: Sequence[Replica], request: Request,
               now_s: float) -> Replica:
        pinned = self.pins.get(request.key)
        if pinned is not None:
            for r in replicas:
                if r.index == pinned:
                    return r
        chosen = None
        if self._advisor is not None:
            for name in self._rank_devices(request.key, replicas):
                members = [r for r in replicas
                           if r.server.config.device.name == name]
                if members:
                    chosen = _least_loaded(members, now_s)
                    break
        if chosen is None:
            chosen = _least_loaded(replicas, now_s)
        self.pins[request.key] = chosen.index
        return chosen


def make_policy(name: str, seed: int, advisor=None) -> RoutingPolicy:
    """Instantiate a policy by name.  ``seed`` feeds ``p2c`` only;
    ``advisor`` feeds ``device-affinity`` only (the cluster passes its
    shared advisor so device rankings draw on the fleet-wide
    evaluation cache)."""
    if name == "round-robin":
        return RoundRobin()
    if name == "least-loaded":
        return LeastLoaded()
    if name == "p2c":
        return PowerOfTwo(seed)
    if name == "shape-affinity":
        return ShapeAffinity()
    if name == "device-affinity":
        return DeviceAffinity(advisor)
    raise KeyError(f"unknown routing policy {name!r}; "
                   f"options: {', '.join(POLICIES)}")


class Router:
    """Applies a policy to the current routable set and keeps the
    routing ledger.

    ``obs`` is the *fleet* observability context: per-replica routed
    counts land in ``cluster_routed_total{replica=...}`` and a request
    finding no routable replica increments
    ``cluster_no_replica_total`` (the cluster sheds it under the
    ``no_replica`` cause).  With ``record_decisions`` on, every
    ``(rid, replica index)`` pair is kept — the determinism tests
    compare these sequences between same-seed runs.
    """

    def __init__(self, policy: RoutingPolicy, obs,
                 record_decisions: bool = False):
        self.policy = policy
        self._obs = obs
        self.routed: Dict[int, int] = {}
        self.no_replica = 0
        self.decisions: Optional[List[Tuple[int, int]]] = \
            [] if record_decisions else None

    def route(self, request: Request, replicas: Sequence[Replica],
              now_s: float) -> Optional[Replica]:
        """Pick a routable replica for ``request``; ``None`` when the
        whole fleet is down or draining."""
        eligible = [r for r in replicas if r.routable]
        if not eligible:
            self.no_replica += 1
            self._obs.registry.counter("cluster_no_replica_total").inc()
            self._obs.tracer.event("router.no_replica", rid=request.rid)
            return None
        chosen = self.policy.choose(eligible, request, now_s)
        self.routed[chosen.index] = self.routed.get(chosen.index, 0) + 1
        self._obs.registry.counter("cluster_routed_total",
                                   replica=str(chosen.index)).inc()
        if self.decisions is not None:
            self.decisions.append((request.rid, chosen.index))
        return chosen
