"""Frozen end-of-run fleet report.

The cluster's analogue of :class:`~repro.serve.stats.StatsReport`: one
:class:`ReplicaSummary` per fleet member (wrapping that replica's own
frozen report) plus fleet-level aggregates.  Fleet latency percentiles
are *exact* — computed over every completion's latency, not merged
from per-replica percentiles, which would be wrong — and ``offered``
counts trace arrivals, not the sum of per-replica offers: a requeued
request is offered to two replicas but arrived once, so the per-replica
numbers legitimately add up to more than the fleet's.

Everything is plain data with a sorted, stable :meth:`to_dict` — two
same-seed runs serialize byte-identically, which is what the CLI
``--json`` determinism checks (and the CI ``cluster-smoke`` job) diff.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..serve.stats import StatsReport


@dataclass(frozen=True)
class ReplicaSummary:
    """One fleet member's lifecycle plus its frozen serving report."""

    index: int
    name: str
    started_s: float
    retired_s: Optional[float]
    outcome: str                  # 'ran' | 'drained' | 'killed'
    routed: int                   # requests the router sent here
    report: StatsReport

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "name": self.name,
            "started_s": self.started_s,
            "retired_s": self.retired_s,
            "outcome": self.outcome,
            "routed": self.routed,
            "report": self.report.to_dict(),
        }


@dataclass(frozen=True)
class ClusterReport:
    """Frozen end-of-run fleet metrics."""

    policy: str
    duration_s: float             # fleet makespan (max replica clock)
    offered: int                  # trace arrivals (not per-replica sums)
    completed: int
    requeued: int                 # drain/kill evacuations, re-routed
    no_replica_shed: int          # arrivals with the whole fleet down
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    replicas_started: int
    replicas_peak: int            # max concurrently-routable replicas
    replicas_final: int           # routable when the run ended
    scale_ups: int
    drains: int
    kills: int
    slo_violations: int
    slo_recoveries: int
    #: Whether any SLO rule was still in violation when the run ended
    #: (None: no SLO policy attached).  The CI recovery gate asserts
    #: violations > 0, recoveries > 0 and this False.
    slo_in_violation: Optional[bool]
    plan_cache: Dict[str, float]  # fleet-aggregated hits/misses/hit_rate
    replicas: Tuple[ReplicaSummary, ...]
    autoscale_actions: Tuple[dict, ...]

    @property
    def completion_rate(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    @property
    def routed_by_replica(self) -> Dict[int, int]:
        return {r.index: r.routed for r in self.replicas}

    def to_dict(self) -> dict:
        """JSON-ready form (``--json`` output); stable key order."""
        return {
            "policy": self.policy,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "completion_rate": self.completion_rate,
            "requeued": self.requeued,
            "no_replica_shed": self.no_replica_shed,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
            },
            "replicas_started": self.replicas_started,
            "replicas_peak": self.replicas_peak,
            "replicas_final": self.replicas_final,
            "autoscaler": {
                "scale_ups": self.scale_ups,
                "drains": self.drains,
                "actions": list(self.autoscale_actions),
            },
            "kills": self.kills,
            "slo": {
                "violations": self.slo_violations,
                "recoveries": self.slo_recoveries,
                "in_violation": self.slo_in_violation,
            },
            "plan_cache": dict(sorted(self.plan_cache.items())),
            "replicas": [r.to_dict() for r in self.replicas],
        }

    def render(self) -> str:
        lines = [
            f"cluster: {self.replicas_started} replica(s) started, "
            f"{self.replicas_final} routable at end "
            f"(peak {self.replicas_peak}), policy {self.policy}",
            f"simulated duration    {self.duration_s:10.3f} s",
            f"offered / completed   {self.offered} / {self.completed}"
            f"  (completion rate {self.completion_rate * 100:.1f} %)",
            f"throughput            {self.throughput_rps:10.1f} req/s",
            f"latency p50/p95/p99   {self.latency_p50_ms:.2f} / "
            f"{self.latency_p95_ms:.2f} / {self.latency_p99_ms:.2f} ms",
            f"plan cache (fleet)    {int(self.plan_cache['hits'])} hits / "
            f"{int(self.plan_cache['misses'])} misses "
            f"(hit rate {self.plan_cache['hit_rate'] * 100:.1f} %)",
            "routed per replica    " + " ".join(
                f"{r.index}:{r.routed}" for r in self.replicas),
        ]
        if self.requeued or self.no_replica_shed:
            lines.append(f"requeued / no-replica {self.requeued} / "
                         f"{self.no_replica_shed}")
        if self.scale_ups or self.drains or self.kills:
            lines.append(f"scale ups / drains    {self.scale_ups} / "
                         f"{self.drains}" +
                         (f"  (kills {self.kills})" if self.kills else ""))
        if self.slo_in_violation is not None:
            state = "IN VIOLATION" if self.slo_in_violation else "ok"
            lines.append(f"slo                   {self.slo_violations} "
                         f"violation(s), {self.slo_recoveries} "
                         f"recovery(ies), end state {state}")
        for r in self.replicas:
            lines.append(
                f"  {r.name:10s} [{r.outcome:7s}] "
                f"routed {r.routed:6d}  completed {r.report.completed:6d}  "
                f"shed rate {r.report.shed_rate * 100:5.1f} %  "
                f"cache hit {r.report.plan_cache['hit_rate'] * 100:5.1f} %")
        return "\n".join(lines)


def aggregate_plan_cache(reports: Tuple[StatsReport, ...]) -> Dict[str, float]:
    """Fleet-wide plan-cache stats: summed hits/misses/entries and the
    hit rate recomputed over the sums."""
    hits = sum(r.plan_cache.get("hits", 0) for r in reports)
    misses = sum(r.plan_cache.get("misses", 0) for r in reports)
    total = hits + misses
    return {
        "hits": float(hits),
        "misses": float(misses),
        "entries": float(sum(r.plan_cache.get("entries", 0)
                             for r in reports)),
        "evictions": float(sum(r.plan_cache.get("evictions", 0)
                               for r in reports)),
        "hit_rate": hits / total if total else 0.0,
    }
