"""Frozen end-of-run fleet report.

The cluster's analogue of :class:`~repro.serve.stats.StatsReport`: one
:class:`ReplicaSummary` per fleet member (wrapping that replica's own
frozen report) plus fleet-level aggregates.  Fleet latency percentiles
are *exact* — computed over every completion's latency, not merged
from per-replica percentiles, which would be wrong — and ``offered``
counts trace arrivals, not the sum of per-replica offers: a requeued
request is offered to two replicas but arrived once, so the per-replica
numbers legitimately add up to more than the fleet's.

Everything is plain data with a sorted, stable :meth:`to_dict` — two
same-seed runs serialize byte-identically, which is what the CLI
``--json`` determinism checks (and the CI ``cluster-smoke`` job) diff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..serve.stats import StatsReport, merge_shed_causes


def _sorted_doc(doc: Optional[dict]) -> Optional[dict]:
    """Recursively key-sort a plain dict so serialization is stable
    regardless of the insertion order the producer happened to use."""
    if doc is None:
        return None
    return {k: (_sorted_doc(v) if isinstance(v, dict) else v)
            for k, v in sorted(doc.items())}


@dataclass(frozen=True)
class ReplicaSummary:
    """One fleet member's lifecycle plus its frozen serving report.

    ``slot`` is the fleet position the replica occupied (a supervisor
    replacement inherits its predecessor's slot under a fresh
    ``index``) and ``incarnation`` counts restarts in that slot — 0
    for every original member.
    """

    index: int
    name: str
    started_s: float
    retired_s: Optional[float]
    outcome: str        # 'ran' | 'drained' | 'killed' | 'crashed' | 'evicted'
    routed: int                   # requests the router sent here
    report: StatsReport
    slot: int = -1                # -1: pre-health report (slot == index)
    incarnation: int = 0
    #: Device display name — set only on heterogeneous fleets (None on
    #: homogeneous ones, keeping their serialized reports byte-identical
    #: to pre-devices builds).
    device: Optional[str] = None

    def to_dict(self) -> dict:
        doc = {
            "index": self.index,
            "name": self.name,
            "slot": self.slot if self.slot >= 0 else self.index,
            "incarnation": self.incarnation,
            "started_s": self.started_s,
            "retired_s": self.retired_s,
            "outcome": self.outcome,
            "routed": self.routed,
            "report": self.report.to_dict(),
        }
        if self.device is not None:
            doc["device"] = self.device
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ReplicaSummary":
        """Rebuild from :meth:`to_dict` output, tolerating documents
        written before ``slot``/``incarnation`` existed."""
        index = int(doc.get("index", 0))
        return cls(
            index=index,
            name=doc.get("name", f"replica{index}"),
            started_s=float(doc.get("started_s", 0.0)),
            retired_s=doc.get("retired_s"),
            outcome=doc.get("outcome", "ran"),
            routed=int(doc.get("routed", 0)),
            report=StatsReport.from_dict(doc.get("report", {})),
            slot=int(doc.get("slot", index)),
            incarnation=int(doc.get("incarnation", 0)),
            device=doc.get("device"),
        )


@dataclass(frozen=True)
class ClusterReport:
    """Frozen end-of-run fleet metrics."""

    policy: str
    duration_s: float             # fleet makespan (max replica clock)
    offered: int                  # trace arrivals (not per-replica sums)
    completed: int
    requeued: int                 # drain/kill evacuations, re-routed
    no_replica_shed: int          # arrivals with the whole fleet down
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    replicas_started: int
    replicas_peak: int            # max concurrently-routable replicas
    replicas_final: int           # routable when the run ended
    scale_ups: int
    drains: int
    kills: int
    slo_violations: int
    slo_recoveries: int
    #: Whether any SLO rule was still in violation when the run ended
    #: (None: no SLO policy attached).  The CI recovery gate asserts
    #: violations > 0, recoveries > 0 and this False.
    slo_in_violation: Optional[bool]
    plan_cache: Dict[str, float]  # fleet-aggregated hits/misses/hit_rate
    replicas: Tuple[ReplicaSummary, ...]
    autoscale_actions: Tuple[dict, ...]
    #: Fleet-level sheds by cause — losses the *routing layer* (not any
    #: one replica) is responsible for: ``no_replica``,
    #: ``retry_budget_exhausted``.  Per-replica causes (``timeout``,
    #: ``hedge_cancelled``, …) live in each replica's report; an open
    #: set — see :data:`repro.serve.stats.SHED_CAUSES`.
    shed_by_cause: Dict[str, int] = field(default_factory=dict)
    #: Self-healing scorecard from the health plane (None: no health
    #: plane attached) — probes, detections, evictions, restarts,
    #: hedging and retry-budget counters; see
    #: :meth:`repro.cluster.health.HealthPlane.scorecard`.
    health: Optional[dict] = None
    #: Live-telemetry summary (None: no telemetry plane attached) —
    #: rollup window counts, incident bundle index and per-rule alert
    #: state; see :meth:`repro.cluster.telemetry.FleetTelemetry.report`.
    #: Emitted conditionally so telemetry-off reports stay
    #: byte-identical to pre-telemetry builds.
    telemetry: Optional[dict] = None

    @property
    def completion_rate(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    @property
    def routed_by_replica(self) -> Dict[int, int]:
        return {r.index: r.routed for r in self.replicas}

    def to_dict(self) -> dict:
        """JSON-ready form (``--json`` output); stable key order.

        The ``telemetry`` key appears only when the plane was attached:
        a telemetry-on run's report equals the telemetry-off run's
        report plus that one key (CI's ``telemetry-smoke`` diffs this).
        """
        doc = {
            "policy": self.policy,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "completion_rate": self.completion_rate,
            "requeued": self.requeued,
            "no_replica_shed": self.no_replica_shed,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
            },
            "replicas_started": self.replicas_started,
            "replicas_peak": self.replicas_peak,
            "replicas_final": self.replicas_final,
            "autoscaler": {
                "scale_ups": self.scale_ups,
                "drains": self.drains,
                "actions": list(self.autoscale_actions),
            },
            "kills": self.kills,
            "slo": {
                "violations": self.slo_violations,
                "recoveries": self.slo_recoveries,
                "in_violation": self.slo_in_violation,
            },
            "plan_cache": dict(sorted(self.plan_cache.items())),
            "shed_by_cause": dict(sorted(self.shed_by_cause.items())),
            "health": _sorted_doc(self.health),
            "replicas": [r.to_dict() for r in self.replicas],
        }
        if self.telemetry is not None:
            doc["telemetry"] = _sorted_doc(self.telemetry)
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ClusterReport":
        """Rebuild from :meth:`to_dict` output.

        Tolerant by construction: every field defaults when absent, so
        reports archived before the health plane (no ``shed_by_cause``
        / ``health`` / ``slot`` keys) load cleanly, and unknown shed
        causes are carried verbatim rather than validated against a
        closed taxonomy.
        """
        latency = doc.get("latency_ms", {})
        autoscaler = doc.get("autoscaler", {})
        slo = doc.get("slo", {})
        return cls(
            policy=doc.get("policy", "round-robin"),
            duration_s=float(doc.get("duration_s", 0.0)),
            offered=int(doc.get("offered", 0)),
            completed=int(doc.get("completed", 0)),
            requeued=int(doc.get("requeued", 0)),
            no_replica_shed=int(doc.get("no_replica_shed", 0)),
            throughput_rps=float(doc.get("throughput_rps", 0.0)),
            latency_p50_ms=float(latency.get("p50", 0.0)),
            latency_p95_ms=float(latency.get("p95", 0.0)),
            latency_p99_ms=float(latency.get("p99", 0.0)),
            replicas_started=int(doc.get("replicas_started", 0)),
            replicas_peak=int(doc.get("replicas_peak", 0)),
            replicas_final=int(doc.get("replicas_final", 0)),
            scale_ups=int(autoscaler.get("scale_ups", 0)),
            drains=int(autoscaler.get("drains", 0)),
            kills=int(doc.get("kills", 0)),
            slo_violations=int(slo.get("violations", 0)),
            slo_recoveries=int(slo.get("recoveries", 0)),
            slo_in_violation=slo.get("in_violation"),
            plan_cache=dict(doc.get("plan_cache", {})),
            replicas=tuple(ReplicaSummary.from_dict(r)
                           for r in doc.get("replicas", ())),
            autoscale_actions=tuple(autoscaler.get("actions", ())),
            shed_by_cause={str(k): int(v)
                           for k, v in doc.get("shed_by_cause", {}).items()},
            health=doc.get("health"),
            telemetry=doc.get("telemetry"),
        )

    def render(self) -> str:
        lines = [
            f"cluster: {self.replicas_started} replica(s) started, "
            f"{self.replicas_final} routable at end "
            f"(peak {self.replicas_peak}), policy {self.policy}",
            f"simulated duration    {self.duration_s:10.3f} s",
            f"offered / completed   {self.offered} / {self.completed}"
            f"  (completion rate {self.completion_rate * 100:.1f} %)",
            f"throughput            {self.throughput_rps:10.1f} req/s",
            f"latency p50/p95/p99   {self.latency_p50_ms:.2f} / "
            f"{self.latency_p95_ms:.2f} / {self.latency_p99_ms:.2f} ms",
            f"plan cache (fleet)    {int(self.plan_cache['hits'])} hits / "
            f"{int(self.plan_cache['misses'])} misses "
            f"(hit rate {self.plan_cache['hit_rate'] * 100:.1f} %)",
            "routed per replica    " + " ".join(
                f"{r.index}:{r.routed}" for r in self.replicas),
        ]
        if self.requeued or self.no_replica_shed:
            lines.append(f"requeued / no-replica {self.requeued} / "
                         f"{self.no_replica_shed}")
        if self.scale_ups or self.drains or self.kills:
            lines.append(f"scale ups / drains    {self.scale_ups} / "
                         f"{self.drains}" +
                         (f"  (kills {self.kills})" if self.kills else ""))
        if self.slo_in_violation is not None:
            state = "IN VIOLATION" if self.slo_in_violation else "ok"
            lines.append(f"slo                   {self.slo_violations} "
                         f"violation(s), {self.slo_recoveries} "
                         f"recovery(ies), end state {state}")
        if self.shed_by_cause:
            lines.append("fleet sheds           " + "  ".join(
                f"{cause}:{n}"
                for cause, n in sorted(self.shed_by_cause.items())))
        if self.health is not None:
            h = self.health
            lines.append(
                f"health                {h.get('probes', 0)} probes, "
                f"{h.get('detections', 0)} suspicion(s) "
                f"({h.get('false_suspicions', 0)} false), "
                f"{h.get('crashes', 0)} crash(es) observed, "
                f"{h.get('flap_downs', 0)} flap(s)")
            lines.append(
                f"self-healing          {h.get('restarts', 0)} restart(s) "
                f"({h.get('restarts_pending', 0)} pending, "
                f"{h.get('restarts_denied', 0)} denied), "
                f"{h.get('evictions', 0)} eviction(s)")
            if h.get("hedges_issued", 0) or h.get("hedges_denied", 0):
                lines.append(
                    f"hedging               {h.get('hedges_issued', 0)} "
                    f"issued = {h.get('hedge_wins', 0)} win(s) + "
                    f"{h.get('hedge_cancels', 0)} cancel(s); "
                    f"{h.get('hedges_denied', 0)} denied")
            budget = h.get("retry_budget") or {}
            if budget.get("spent", 0) or budget.get("exhaustions", 0):
                tenants = budget.get("tenants_exhausted") or ()
                lines.append(
                    f"retry budget          {budget.get('spent', 0)} spent / "
                    f"{budget.get('offers', 0)} offered, "
                    f"{budget.get('exhaustions', 0)} exhaustion(s) across "
                    f"{len(tenants)} tenant(s)")
        if self.telemetry is not None:
            t = self.telemetry
            alerts = t.get("alerts") or {}
            lines.append(
                f"telemetry             {t.get('windows', 0)} window(s) "
                f"@ {t.get('window_s', 0)} s, "
                f"{len(t.get('incidents', ()))} incident(s), "
                f"{alerts.get('events', 0)} alert edge(s)")
        for r in self.replicas:
            tag = (f" slot{r.slot}#{r.incarnation}"
                   if r.incarnation else "")
            if r.device is not None:
                tag += f" {r.device}"
            lines.append(
                f"  {r.name:10s} [{r.outcome:7s}]{tag} "
                f"routed {r.routed:6d}  completed {r.report.completed:6d}  "
                f"shed rate {r.report.shed_rate * 100:5.1f} %  "
                f"cache hit {r.report.plan_cache['hit_rate'] * 100:5.1f} %")
        return "\n".join(lines)


def aggregate_plan_cache(reports: Tuple[StatsReport, ...]) -> Dict[str, float]:
    """Fleet-wide plan-cache stats: summed hits/misses/entries and the
    hit rate recomputed over the sums."""
    hits = sum(r.plan_cache.get("hits", 0) for r in reports)
    misses = sum(r.plan_cache.get("misses", 0) for r in reports)
    total = hits + misses
    return {
        "hits": float(hits),
        "misses": float(misses),
        "entries": float(sum(r.plan_cache.get("entries", 0)
                             for r in reports)),
        "evictions": float(sum(r.plan_cache.get("evictions", 0)
                               for r in reports)),
        "hit_rate": hits / total if total else 0.0,
    }


def aggregate_shed_causes(report: ClusterReport) -> Dict[str, int]:
    """Every shed in the run, by cause: the fleet-level causes
    (``no_replica``, ``retry_budget_exhausted``) merged with each
    replica's ``shed_by_cause``.  Open taxonomy — causes this build
    has never heard of merge like any other (see
    :func:`repro.serve.stats.merge_shed_causes`)."""
    return merge_shed_causes(report.shed_by_cause,
                             *(r.report.shed_by_cause
                               for r in report.replicas))
