"""Closed-loop SLO-driven autoscaling.

The autoscaler is the consumer of the SLO engine's edge-triggered
events: the cluster's fleet :class:`~repro.obs.slo.SLOMonitor`
evaluates its rules over a *sliding window* of recent fleet traffic on
the simulated clock, and on every ok→fail / fail→ok transition calls
:meth:`Autoscaler.on_edge` (the monitor's ``listener`` hook — no trace
parsing, no polling of its own).

Decisions are deliberately simple and fully deterministic:

* a rule entering violation **scales up** by one replica, bounded by
  ``max_replicas`` and a cooldown (one action per cooldown window, so
  a long violation episode grows the fleet step by step rather than
  all at once);
* a rule recovering — with *no* rule still in violation — **scales
  down** by one: the highest-indexed routable replica starts a
  graceful drain (its queue is re-routed; it finishes in-flight work
  and retires), bounded by ``min_replicas`` and the same cooldown.

Every action lands in the fleet trace as a zero-duration
``autoscale.scale_up`` span at the decision time or an
``autoscale.drain`` span stretching from the decision to the moment
the drained replica went idle, plus an entry in the action ledger the
:class:`~repro.cluster.report.ClusterReport` carries — the CI smoke
gates on a violated latency SLO being recovered within the run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..obs.slo import SLORule, SLOVerdict


@dataclass(frozen=True)
class AutoscalePolicy:
    """Bounds and pacing of the scaling loop."""

    min_replicas: int = 1
    max_replicas: int = 8
    #: Minimum simulated seconds between two scaling actions.
    cooldown_s: float = 0.2

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError(
                f"min_replicas must be >= 1, got {self.min_replicas}")
        if self.max_replicas < self.min_replicas:
            raise ValueError(
                f"max_replicas ({self.max_replicas}) must be >= "
                f"min_replicas ({self.min_replicas})")
        if self.cooldown_s < 0:
            raise ValueError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}")


class Autoscaler:
    """Turns SLO edges into fleet-size changes on one cluster.

    ``fleet`` is the owning :class:`~repro.cluster.fleet.Cluster`; the
    autoscaler calls its ``scale_up`` / ``scale_down`` and reads its
    routable count.  The violation *set* is tracked here (not read
    back from the monitor) because the listener fires mid-evaluation,
    before the monitor commits the new rule state.
    """

    def __init__(self, policy: AutoscalePolicy, fleet) -> None:
        self.policy = policy
        self._fleet = fleet
        self._violated: Set[str] = set()
        self._last_action_s: Optional[float] = None
        #: Action ledger: dicts with action/t_s/rule/replica/replicas.
        self.actions: List[dict] = []
        self.scale_ups = 0
        self.drains = 0

    @property
    def in_violation(self) -> bool:
        """Whether any rule is currently in a violation episode."""
        return bool(self._violated)

    def _cooled_down(self, now_s: float) -> bool:
        return (self._last_action_s is None
                or now_s - self._last_action_s >= self.policy.cooldown_s)

    def _record(self, action: str, now_s: float, rule: str,
                replica: int) -> None:
        self._last_action_s = now_s
        self.actions.append({
            "action": action, "t_s": now_s, "rule": rule,
            "replica": replica, "replicas": self._fleet.routable_count,
        })

    def on_edge(self, rule: SLORule, failed: bool, now_s: float,
                verdict: SLOVerdict) -> None:
        """The :class:`~repro.obs.slo.SLOMonitor` listener hook."""
        if failed:
            self._violated.add(rule.name)
            if (self._fleet.routable_count < self.policy.max_replicas
                    and self._cooled_down(now_s)):
                index = self._fleet.scale_up(now_s, rule.name)
                self.scale_ups += 1
                self._record("scale_up", now_s, rule.name, index)
        else:
            self._violated.discard(rule.name)
            if (not self._violated
                    and self._fleet.routable_count > self.policy.min_replicas
                    and self._cooled_down(now_s)):
                index = self._fleet.scale_down(now_s, rule.name)
                if index is not None:
                    self.drains += 1
                    self._record("drain", now_s, rule.name, index)
