"""Fleet wiring for the live-telemetry plane.

:class:`FleetTelemetry` is the glue between the generic obs pieces —
:class:`~repro.obs.timeseries.Rollups`,
:class:`~repro.obs.alerts.AlertManager`,
:class:`~repro.obs.recorder.FlightRecorder` — and the cluster driver:

* the fleet registry and every replica's private registry become
  rollup sources (replicas registered as they spawn, so restarts and
  scale-ups join the pipeline mid-run), each labeled with its
  device's ``name@digest``;
* each replica's plan-cache and dispatch-memo stats become probes
  (the memo's counters deliberately never enter the registry — see
  :class:`~repro.core.evalcache.DispatchMemo` — so the *probe* path
  is how its hit rate reaches the window log);
* replica health states are a state probe, recorded per window;
* completions accepted by the fleet (post hedge-filtering) feed the
  per-tenant / per-shape / per-device latency percentiles;
* incident capture: an alert-firing edge, a health-plane eviction
  (see :meth:`HealthPlane._evict`) or a fleet SLO violation edge
  freezes the recorder rings into a bundle.

Everything here is observational: no registry writes into the
simulated stats, no clocks, no event horizons — a run with telemetry
enabled produces a byte-identical :class:`ClusterReport` (minus the
``telemetry`` section itself) to one without, which CI's
``telemetry-smoke`` job enforces.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..obs.alerts import AlertManager, DEFAULT_ALERT_RULES
from ..obs.recorder import FlightRecorder, write_incident_bundle
from ..obs.timeseries import Rollups, TelemetryConfig

#: Recorder name used for fleet-scoped incidents (alerts, SLO edges).
FLEET_RECORDER = "fleet"


class FleetTelemetry:
    """One fleet run's live-telemetry pipeline."""

    def __init__(self, cluster, config: TelemetryConfig):
        self.cluster = cluster
        self.config = config
        self.rollups = Rollups(window_s=config.window_s)
        self.rollups.add_source("fleet", cluster.obs.registry)
        self.rollups.add_state_probe("replicas", self._replica_states)
        self.alerts: Optional[AlertManager] = None
        if config.alerts:
            rules = (config.alert_rules if config.alert_rules is not None
                     else DEFAULT_ALERT_RULES)
            self.alerts = AlertManager(
                rules, self.rollups,
                tracer=lambda: cluster.obs.tracer,
                listener=self._on_alert_edge)
        self.recorders: Dict[str, FlightRecorder] = {}
        self._fleet_recorder = self._make_recorder(FLEET_RECORDER, None)
        self.incidents: List[dict] = []
        self.incidents_suppressed = 0

    # -- wiring ------------------------------------------------------------

    def _make_recorder(self, name: str, tracer) -> FlightRecorder:
        recorder = FlightRecorder(name, tracer=tracer,
                                  ring_windows=self.config.ring_windows,
                                  ring_spans=self.config.ring_spans)
        self.rollups.on_window(recorder.observe_window)
        self.recorders[name] = recorder
        return recorder

    def register(self, replica) -> None:
        """Attach a freshly spawned replica (initial fleet, supervisor
        restarts and autoscaler scale-ups all land here)."""
        server = replica.server
        device = server.device_label
        self.rollups.add_source(replica.name, server.obs.registry,
                                device=device)
        self.rollups.add_probe(f"{replica.name}.plan_cache",
                               server.plan_cache.stats, device=device)
        if server.dispatch_memo_stats() is not None:
            self.rollups.add_probe(f"{replica.name}.dispatch_memo",
                                   server.dispatch_memo_stats, device=device)
        self._make_recorder(replica.name, replica.tracer)

    def _replica_states(self) -> Dict[str, str]:
        return {r.name: r.state for r in self.cluster.replicas}

    # -- the loop hooks ----------------------------------------------------

    def observe(self, completion, replica) -> None:
        """One fleet-accepted completion (already hedge-filtered)."""
        self.rollups.observe_completion(
            completion, device=replica.server.device_label,
            replica=replica.name)

    def poll(self, now_s: float) -> None:
        self.rollups.poll(now_s)

    def finalize(self, now_s: float) -> None:
        self.rollups.finalize(now_s)

    # -- incident triggers -------------------------------------------------

    def _on_alert_edge(self, rule, firing: bool, doc: dict) -> None:
        if firing:
            self.incident(f"alert:{rule.name}", doc["end_s"],
                          window=doc["index"])

    def on_slo_edge(self, rule, failed: bool, now_s: float,
                    verdict) -> None:
        """Chained :class:`~repro.obs.slo.SLOMonitor` listener."""
        if failed:
            self.incident(f"slo:{rule.name}", now_s)

    def on_eviction(self, replica, now_s: float) -> None:
        """Health-plane eviction hook."""
        self.incident("eviction", now_s, replica=replica.name)

    def incident(self, reason: str, t_s: float,
                 replica: Optional[str] = None, **context) -> Optional[dict]:
        """Freeze a bundle (fleet-scoped unless ``replica`` names a
        recorder); returns it, or None past ``max_incidents``."""
        if len(self.incidents) >= self.config.max_incidents:
            self.incidents_suppressed += 1
            return None
        recorder = self.recorders.get(replica or FLEET_RECORDER,
                                      self._fleet_recorder)
        if recorder is self._fleet_recorder:
            # The fleet tracer may have been swapped in after
            # construction (Cluster.enable_tracing) — rebind.
            recorder.tracer = self.cluster.obs.tracer
        scorecard = (self.cluster.health.scorecard()
                     if self.cluster.health is not None else None)
        bundle = recorder.bundle(
            reason, t_s, scorecard=scorecard,
            alerts=self.alerts.firing if self.alerts is not None else None,
            **context)
        bundle["sequence"] = len(self.incidents)
        self.incidents.append(bundle)
        return bundle

    # -- exports -----------------------------------------------------------

    def write_incidents(self, directory: str) -> List[str]:
        """One file per bundle under ``directory`` (created if
        missing), deterministically named; returns the paths."""
        os.makedirs(directory, exist_ok=True)
        paths = []
        for bundle in self.incidents:
            reason = bundle["reason"].replace(":", "-").replace("/", "-")
            name = f"incident-{bundle['sequence']:03d}-{reason}.json"
            path = os.path.join(directory, name)
            write_incident_bundle(path, bundle)
            paths.append(path)
        return paths

    def report(self) -> dict:
        """The ``telemetry`` section of the cluster report."""
        doc = self.rollups.report()
        doc["incidents"] = [
            {"reason": b["reason"], "t_s": b["t_s"],
             "recorder": b["recorder"]} for b in self.incidents]
        doc["incidents_suppressed"] = self.incidents_suppressed
        if self.alerts is not None:
            doc["alerts"] = self.alerts.report()
        return doc
