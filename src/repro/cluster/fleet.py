"""The fleet driver: replicas + router + SLO monitor + autoscaler.

:class:`Cluster` generalises :meth:`repro.serve.scheduler.Server.run`
from one simulated GPU to a replicated fleet on one shared virtual
timeline.  The event loop is a discrete-event simulation over a global
:class:`~repro.gpusim.timing.SimClock`:

1. apply any scheduled replica kills due now (chaos: the router sheds
   around the hole while the evacuated queue is re-routed);
2. run the health plane (when configured): fleet-chaos transitions
   (crashes, flaps), supervisor restarts due, heartbeat probes —
   suspicion, eviction — and hedging (see
   :mod:`repro.cluster.health`);
3. run the fleet SLO monitor's due evaluations — a violation /
   recovery edge may scale the fleet through the autoscaler;
4. route every arrival due now to a replica (the policy sees only
   routable replicas);
5. poll each replica in index order: a replica whose private clock is
   behind catches up and releases batches; one that is mid-batch
   (clock ahead) waits for the fleet clock;
6. advance the fleet clock to the next event — the earliest of: next
   arrival, each busy replica's completion, each queue's max-wait
   release, the monitor's next poll, the next scheduled kill, the
   health plane's next probe/restart/chaos edge.

Determinism is end-to-end: iteration is always in replica-index order,
the only RNGs are the seeded per-replica fault injectors and the
``p2c`` policy's own seeded generator, and no wall clock is ever read
— two same-seed runs produce byte-identical reports, traces and
metrics (the CI ``cluster-smoke`` job diffs exactly that).

The *fleet* sliding-window SLO view exists because the cumulative
``serve_latency_seconds`` histogram answers "how was the whole run"
— after a scale-up fixes the tail, the cumulative p99 stays violated
for a long time, so an autoscaler fed by it can never observe its own
success.  :meth:`Cluster._window_snapshot` therefore summarises only
the last ``window_s`` of fleet traffic into a snapshot-shaped dict and
feeds *that* to the :class:`~repro.obs.slo.SLOMonitor`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..core.advisor import Advisor
from ..faults import FaultPlan, FleetFaultPlan, StragglerSpec
from ..frameworks.registry import shared_implementations
from ..gpusim.timing import SimClock
from ..obs.context import Observability, obs_session
from ..obs.hist import percentile, summarize
from ..obs.slo import SLOMonitor, SLOPolicy
from ..obs.timeseries import TelemetryConfig
from ..obs.tracer import SimTracer
from ..rng import DEFAULT_SEED
from ..serve.loadgen import Arrival
from ..serve.request import Request, fast_request
from ..serve.scheduler import ServerConfig
from .autoscaler import AutoscalePolicy, Autoscaler
from .health import HealthConfig, HealthPlane
from .replica import Replica
from .report import ClusterReport, ReplicaSummary, aggregate_plan_cache
from .router import POLICIES, Router, make_policy
from .telemetry import FleetTelemetry

#: Per-replica fault seeds are derived from the cluster seed with this
#: (prime) stride so replicas draw independent fault streams that stay
#: stable as the fleet grows.
_FAULT_SEED_STRIDE = 7919


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a fleet run is parameterised by."""

    replicas: int = 4
    policy: str = "round-robin"
    server: ServerConfig = ServerConfig()
    #: Seeds the ``p2c`` router and derives per-replica fault seeds.
    seed: int = DEFAULT_SEED
    #: Per-slot device profile names for a heterogeneous fleet
    #: (resolved through :func:`repro.devices.resolve_device`; slugs
    #: like ``k40c`` or display names like ``Tesla K40c``).  Empty ()
    #: keeps every replica on ``server.device`` — byte-identical to the
    #: pre-devices cluster.  When set, it must name one device per
    #: initial replica; supervisor restarts inherit their slot's
    #: device, autoscaler scale-ups beyond the tuple use
    #: ``server.device``.
    devices: Tuple[str, ...] = ()
    #: Fleet-level SLO rules, evaluated over the sliding window.
    slo: Optional[SLOPolicy] = None
    #: Enable the autoscaler (requires ``slo``).
    autoscale: Optional[AutoscalePolicy] = None
    #: Sliding-window width for the fleet SLO snapshot, seconds.
    window_s: float = 1.0
    #: Per-replica fault plans by slot; replicas not listed use
    #: ``default_fault_plan`` (``None`` = fault-free).  A supervisor
    #: replacement inherits its slot's plan.
    fault_plans: Dict[int, FaultPlan] = field(default_factory=dict)
    default_fault_plan: Optional[FaultPlan] = None
    #: Chaos: scheduled replica kills, as either a list of
    #: ``(slot, time_s)`` pairs — a slot may die more than once when
    #: the supervisor restarts it — or the legacy ``{slot: time_s}``
    #: dict (which can only express one death per slot).
    kills: Union[Dict[int, float],
                 Sequence[Tuple[int, float]]] = field(default_factory=dict)
    #: Self-healing plane (detector, supervisor, hedging, retry
    #: budgets); ``None`` keeps the fleet byte-identical to the
    #: pre-health cluster.
    health: Optional[HealthConfig] = None
    #: Fleet-level chaos (replica crashes, degrades, flaps, domain
    #: failures).  Crash-bearing plans require ``health``: without
    #: probes nobody would ever observe the death and its stranded
    #: queue would deadlock the fleet.
    fleet_fault_plan: Optional[FleetFaultPlan] = None
    #: Live-telemetry plane (windowed rollups, burn-rate alerts,
    #: flight recorders); ``None`` runs without it.  Observational
    #: only: the :class:`ClusterReport` is byte-identical either way,
    #: minus its own ``telemetry`` section.
    telemetry: Optional[TelemetryConfig] = None

    def kill_schedule(self) -> List[Tuple[int, float]]:
        """The kill list normalised to ``(slot, time_s)`` pairs in
        execution order (time, then slot), whichever form ``kills``
        took."""
        if isinstance(self.kills, dict):
            pairs = [(int(i), float(t)) for i, t in self.kills.items()]
        else:
            pairs = [(int(i), float(t)) for i, t in self.kills]
        return sorted(pairs, key=lambda kv: (kv[1], kv[0]))

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown routing policy {self.policy!r}; "
                             f"options: {', '.join(POLICIES)}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.devices and len(self.devices) != self.replicas:
            raise ValueError(
                f"devices names {len(self.devices)} device(s) for "
                f"{self.replicas} replica(s); give one per replica "
                f"or leave it empty for a homogeneous fleet")
        if self.autoscale is not None:
            if self.slo is None:
                raise ValueError("autoscaling needs an SLO policy "
                                 "(the autoscaler consumes its edges)")
            if not (self.autoscale.min_replicas <= self.replicas
                    <= self.autoscale.max_replicas):
                raise ValueError(
                    f"initial fleet size {self.replicas} outside autoscale "
                    f"bounds [{self.autoscale.min_replicas}, "
                    f"{self.autoscale.max_replicas}]")
        for index, t_s in self.kill_schedule():
            if index < 0 or t_s < 0:
                raise ValueError(f"invalid kill {index} @ {t_s}")
        if (self.fleet_fault_plan is not None
                and self.fleet_fault_plan.needs_health
                and self.health is None):
            raise ValueError(
                f"fleet fault plan {self.fleet_fault_plan.name!r} "
                f"schedules crashes/flaps, which only the health plane "
                f"can detect — set ClusterConfig.health")


class Cluster:
    """A replicated serving fleet on one shared virtual timeline."""

    def __init__(self, config: ClusterConfig = ClusterConfig()):
        self.config = config
        self.clock = SimClock()
        #: Fleet observability: router/autoscaler/SLO metrics + spans.
        #: Each replica additionally owns a private registry + tracer.
        self.obs = Observability()
        # One advisor shared by every replica: its ranking is a pure
        # function of (config, device), so sharing only shares the
        # memoization, never state — heterogeneous replicas pass their
        # own device per call (see Server._plan_for).
        self._advisor = Advisor(device=config.server.device,
                                implementations=shared_implementations())
        # Per-slot server configs for a heterogeneous fleet; empty when
        # homogeneous (every slot serves config.server untouched).
        # The registry import is lazy: repro.devices.plan imports this
        # module, so a top-level import back would cycle.
        self._slot_configs: Dict[int, ServerConfig] = {}
        if config.devices:
            from ..devices.registry import resolve_device
            for slot, name in enumerate(config.devices):
                spec = resolve_device(name)
                self._slot_configs[slot] = (
                    config.server if spec == config.server.device
                    else replace(config.server, device=spec))
        self.router = Router(
            make_policy(config.policy, config.seed, advisor=self._advisor),
            self.obs)
        self.replicas: List[Replica] = []
        #: (name, tracer) per replica, for the merged exports.
        self.replica_tracers: List[Tuple[str, SimTracer]] = []
        self._tracing = False
        self._trace_sample = 1
        self._next_index = 0
        self._peak_routable = 0
        self._consumed: Dict[int, int] = {}      # completions collected
        self._incarnations: Dict[int, int] = {}  # spawns per slot
        self._requeued = 0
        self._kills_applied = 0
        #: Fleet-level terminal sheds by cause (``no_replica`` is kept
        #: in the router; ``retry_budget_exhausted`` lands here).
        self._fleet_sheds: Dict[str, int] = {}
        self.health: Optional[HealthPlane] = None
        if config.health is not None:
            self.health = HealthPlane(config.health, self, config.seed,
                                      plan=config.fleet_fault_plan)
        self._kill_queue: Deque[Tuple[int, float]] = deque()
        self._ran = False
        # Sliding-window state for the fleet SLO snapshot.
        self._win_offered: Deque[float] = deque()
        self._win_completions: Deque[Tuple[float, float, float]] = deque()
        self._all_latencies: List[float] = []
        #: Live-telemetry pipeline; replicas register as they spawn.
        self.telemetry: Optional[FleetTelemetry] = None
        if config.telemetry is not None:
            self.telemetry = FleetTelemetry(self, config.telemetry)
        self.autoscaler: Optional[Autoscaler] = None
        self.monitor: Optional[SLOMonitor] = None
        if config.slo is not None:
            edges = []
            if config.autoscale is not None:
                self.autoscaler = Autoscaler(config.autoscale, self)
                edges.append(self.autoscaler.on_edge)
            if self.telemetry is not None:
                # Telemetry listens second: the autoscaler reacts to
                # the edge first, so the incident bundle records the
                # fleet as the report will.
                edges.append(self.telemetry.on_slo_edge)
            if not edges:
                listener = None
            elif len(edges) == 1:
                listener = edges[0]
            else:
                def listener(rule, failed, now_s, verdict,
                             _edges=tuple(edges)):
                    for fn in _edges:
                        fn(rule, failed, now_s, verdict)
            self.monitor = SLOMonitor(config.slo, self.obs,
                                      snapshot_fn=self._window_snapshot,
                                      listener=listener)

    # -- observability -----------------------------------------------------

    def enable_tracing(self, sample: int = 1) -> SimTracer:
        """Attach a fleet tracer (router + autoscaler + SLO events) on
        the fleet clock; replicas spawned afterwards each get their own
        tracer in a disjoint span-id block.  Call before :meth:`run`.
        ``sample`` > 1 samples each replica's ``serve.batch`` unit
        trees 1-in-``sample`` (see
        :class:`~repro.obs.tracer.TraceSampler`); the fleet tracer's
        own router/autoscaler events are never sampled.  Returns the
        fleet tracer for the merged exports
        (:func:`repro.obs.export.cluster_chrome_trace`)."""
        if sample < 1:
            raise ValueError(f"sample must be >= 1, got {sample}")
        tracer = SimTracer(self.clock)
        self.obs.tracer = tracer
        self._tracing = True
        self._trace_sample = sample
        return tracer

    def _window_snapshot(self) -> dict:
        """The last ``window_s`` of fleet traffic, shaped like a
        registry snapshot so the SLO rules evaluate unchanged.

        Completions arrive slightly out of finish-time order across
        replicas, so pruning stops at the first in-window head — the
        effective window can briefly hold a few older entries, which
        is deterministic and bounded by one batch's service time.
        """
        cutoff = self.clock.now_s - self.config.window_s
        while self._win_offered and self._win_offered[0] < cutoff:
            self._win_offered.popleft()
        while self._win_completions and self._win_completions[0][0] < cutoff:
            self._win_completions.popleft()
        latencies = [lat for _, lat, _ in self._win_completions]
        waits = [w for _, _, w in self._win_completions]
        return {
            "counters": {
                "serve_requests_offered_total": float(len(self._win_offered)),
                "serve_requests_completed_total":
                    float(len(self._win_completions)),
            },
            "histograms": {
                "serve_latency_seconds": summarize(latencies),
                "serve_queue_wait_seconds": summarize(waits),
            },
        }

    # -- fleet mutation (also called back by the autoscaler) ---------------

    @property
    def routable_count(self) -> int:
        return sum(1 for r in self.replicas if r.routable)

    def _spawn(self, now_s: float, slot: Optional[int] = None) -> Replica:
        """Add a fleet member.  ``slot`` is set by the supervisor when
        the new replica replaces a dead one: the replacement gets a
        fresh index (and thus a fresh server with a **cold** plan
        cache) but inherits the slot's fault plan and chaos targeting.
        """
        index = self._next_index
        self._next_index += 1
        if slot is None:
            slot = index
        incarnation = self._incarnations.get(slot, 0)
        self._incarnations[slot] = incarnation + 1
        plan = self._slot_plan(slot)
        server_config = self._slot_configs.get(slot, self.config.server)
        replica = Replica(
            index, server_config, advisor=self._advisor,
            fault_plan=plan,
            fault_seed=self.config.seed + _FAULT_SEED_STRIDE * (index + 1),
            tracing=self._tracing, trace_sample=self._trace_sample,
            slot=slot, incarnation=incarnation)
        replica.begin(now_s)
        self.replicas.append(replica)
        self._consumed[index] = 0
        if self._tracing:
            self.replica_tracers.append((replica.name, replica.tracer))
        if self.health is not None:
            self.health.register(replica, now_s)
        if self.telemetry is not None:
            self.telemetry.register(replica)
        self._peak_routable = max(self._peak_routable, self.routable_count)
        return replica

    def _slot_plan(self, slot: int) -> Optional[FaultPlan]:
        """The per-server fault plan for a slot, with any fleet-level
        degrade windows for the slot compiled in as straggler windows
        (so a degraded replica's *service times* slow down through the
        existing injector; the health plane separately delays its
        heartbeats)."""
        plan = self.config.fault_plans.get(slot,
                                           self.config.default_fault_plan)
        fleet_plan = self.config.fleet_fault_plan
        if fleet_plan is None:
            return plan
        degrades = fleet_plan.degrades_for(slot)
        if not degrades:
            return plan
        extra = tuple(StragglerSpec(slowdown=d.factor, start_s=d.start_s,
                                    end_s=d.end_s) for d in degrades)
        if plan is None:
            return FaultPlan(name=f"fleet:{fleet_plan.name}",
                             stragglers=extra)
        return replace(plan, stragglers=plan.stragglers + extra)

    def scale_up(self, now_s: float, rule: str = "") -> int:
        """Add one replica (autoscaler callback); returns its index."""
        replica = self._spawn(now_s)
        self.obs.tracer.add_span("autoscale.scale_up", cat="autoscale",
                                 start_s=now_s, end_s=now_s,
                                 replica=replica.index, rule=rule,
                                 replicas=self.routable_count)
        self.obs.registry.counter("cluster_scale_ups_total").inc()
        return replica.index

    def scale_down(self, now_s: float, rule: str = "") -> Optional[int]:
        """Start draining the highest-indexed routable replica
        (autoscaler callback); its queue is re-routed immediately and
        it retires once idle.  Returns the index, or ``None`` when
        nothing is drainable."""
        candidates = [r for r in self.replicas if r.routable]
        if len(candidates) <= 1:
            return None
        victim = max(candidates, key=lambda r: r.index)
        evacuated = victim.start_drain(now_s)
        self._requeue(evacuated, now_s)
        self.obs.registry.counter("cluster_drains_total").inc()
        return victim.index

    def _apply_kills(self, now_s: float) -> None:
        while self._kill_queue and self._kill_queue[0][1] <= now_s:
            index, _ = self._kill_queue.popleft()
            # Kills target slots, so a schedule can kill a slot's
            # restarted incarnation again (restart-then-kill-again).
            victim = next((r for r in self.replicas
                           if r.slot == index and r.active), None)
            if victim is None:
                continue            # already retired or dead
            evacuated = victim.kill(now_s)
            self._kills_applied += 1
            self.obs.registry.counter("cluster_kills_total").inc()
            self.obs.tracer.add_span("fault.replica_kill", cat="faults",
                                     start_s=now_s, end_s=now_s,
                                     replica=victim.index,
                                     requeued=len(evacuated))
            if self.health is not None:
                self.health.on_kill(victim.slot, now_s)
            self._requeue_failed(evacuated, now_s)

    def _requeue_failed(self, requests: Sequence[Request],
                        now_s: float) -> None:
        """Re-route an *involuntary* evacuation (kill or eviction).

        Without the health plane this is a plain requeue.  With it,
        pending-hedge copies are skipped (their twin still serves the
        rid) and each survivor spends a retry-budget token — requests
        the tenant budget refuses are shed fleet-side under
        ``retry_budget_exhausted``.  Voluntary autoscaler drains stay
        budget-free: they are the fleet's own choice, not a failure.
        """
        if self.health is None:
            self._requeue(requests, now_s)
            return
        route, denied = self.health.plan_requeue(list(requests))
        if denied:
            n = len(denied)
            self._fleet_sheds["retry_budget_exhausted"] = \
                self._fleet_sheds.get("retry_budget_exhausted", 0) + n
            self.obs.registry.counter(
                "cluster_sheds_total",
                cause="retry_budget_exhausted").inc(n)
        self._requeue(route, now_s)

    def _requeue(self, requests: Sequence[Request], now_s: float) -> None:
        """Re-route requests evacuated from a draining/killed replica.

        They keep their original arrival time (so their deadline still
        stands) and are *not* re-counted as fleet offers."""
        if not requests:
            return
        self._requeued += len(requests)
        self.obs.registry.counter("cluster_requeued_total").inc(len(requests))
        for request in requests:
            target = self.router.route(request, self.replicas, now_s)
            if target is not None:
                target.admit(request)

    def _route_arrival(self, arrival: Arrival, now_s: float) -> None:
        request = fast_request(arrival.rid, arrival.model, arrival.layer,
                               arrival.key, arrival.t_s,
                               self.config.server.timeout_s)
        self._win_offered.append(arrival.t_s)
        if self.health is not None:
            self.health.budget.on_offer(arrival.model)
        target = self.router.route(request, self.replicas, now_s)
        if target is not None:
            target.admit(request)

    def _collect_completions(self) -> None:
        health = self.health
        telemetry = self.telemetry
        filtering = health is not None and health.hedging
        now = self.clock.now_s
        for replica in self.replicas:
            stats = replica.server.stats
            if stats is None:
                continue
            start = self._consumed[replica.index]
            comps = stats.completions
            if len(comps) == start:
                continue
            if filtering:
                # Hedged rids complete once fleet-side: the winner is
                # kept, the losing copy's completion (if it raced to
                # execute anyway) is dropped here.
                for c in comps[start:]:
                    if health.on_completion(c.request.rid, replica, now):
                        self._win_completions.append(
                            (c.finish_s, c.latency_s, c.queue_wait_s))
                        self._all_latencies.append(c.latency_s)
                        if telemetry is not None:
                            telemetry.observe(c, replica)
            else:
                for c in comps[start:]:
                    self._win_completions.append(
                        (c.finish_s, c.latency_s, c.queue_wait_s))
                    self._all_latencies.append(c.latency_s)
                    if telemetry is not None:
                        telemetry.observe(c, replica)
            self._consumed[replica.index] = len(comps)

    def _retire_idle_drainers(self, now_s: float) -> None:
        for replica in self.replicas:
            if (replica.draining and replica.active
                    and replica.queue_depth == 0
                    and replica.server.clock.now_s <= now_s):
                self._finish_drain(replica, now_s)

    def _finish_drain(self, replica: Replica, end_s: float) -> None:
        replica.retire(end_s, outcome="drained")
        self.obs.tracer.add_span(
            "autoscale.drain", cat="autoscale",
            start_s=replica.drain_started_s, end_s=end_s,
            replica=replica.index)

    # -- the fleet driver --------------------------------------------------

    def run(self, trace: Sequence[Arrival]) -> ClusterReport:
        """Serve one arrival trace across the fleet; returns the
        frozen :class:`~repro.cluster.report.ClusterReport`."""
        if self._ran:
            raise RuntimeError("a Cluster runs one trace; build a new one")
        self._ran = True
        pending = sorted(trace, key=lambda a: (a.t_s, a.rid))
        self._kill_queue = deque(self.config.kill_schedule())
        for _ in range(self.config.replicas):
            self._spawn(0.0)
        with obs_session(self.obs):
            root = self.obs.tracer.span(
                "cluster.run", cat="cluster", policy=self.config.policy,
                replicas=self.config.replicas, arrivals=len(trace))
            root.__enter__()
            try:
                self._loop(pending)
            finally:
                replicas_final = self.routable_count
                end_s = self.clock.now_s
                for replica in self.replicas:
                    if not replica.active:
                        continue
                    end = max(end_s, replica.server.clock.now_s)
                    if replica.draining:
                        self._finish_drain(replica, end)
                    else:
                        replica.retire(
                            end,
                            outcome="crashed" if replica.down else "ran")
                self._collect_completions()
                if self.health is not None:
                    self.health.finish()
                root.annotate(completed=len(self._all_latencies),
                              replicas_final=replicas_final)
                root.__exit__(None, None, None)
        return self._build_report(len(trace), replicas_final)

    def _loop(self, pending: Sequence[Arrival]) -> None:
        # Sorted list + cursor instead of a deque of popped arrivals:
        # admission walks a slice, and the frequently-read "next
        # arrival time" is one index away.  Per-iteration attribute
        # lookups (clock, monitor, kill queue) are hoisted; the replica
        # list itself must be re-read each pass because the autoscaler
        # and kill plane mutate it mid-loop.
        clock = self.clock
        monitor = self.monitor
        health = self.health
        telemetry = self.telemetry
        kill_queue = self._kill_queue
        route = self._route_arrival
        n = len(pending)
        i = 0
        while True:
            now = clock.now_s
            if telemetry is not None:
                # Poll before this stop's processing: counter ticks
                # made while handling a stop are attributed to the
                # window that stop's fleet time falls in.
                telemetry.poll(now)
            if kill_queue:
                self._apply_kills(now)
            if health is not None:
                health.poll(now)
            if monitor is not None:
                monitor.poll(now)
            while i < n and pending[i].t_s <= now:
                route(pending[i], now)
                i += 1
            drain = i >= n
            for replica in list(self.replicas):
                replica.poll(now, drain=drain)
            self._collect_completions()
            self._retire_idle_drainers(now)
            if drain and not any(r.queue_depth for r in self.replicas
                                 if r.active):
                return
            events: List[float] = []
            if i < n:
                events.append(pending[i].t_s)
            if kill_queue:
                events.append(kill_queue[0][1])
            if health is not None:
                events.append(health.next_event_s())
            if monitor is not None:
                events.append(monitor.next_poll_s)
            for replica in self.replicas:
                if not replica.active:
                    continue
                busy = replica.busy_until(now)
                if busy is not None:
                    events.append(busy)
                else:
                    release = replica.next_release_s()
                    if release is not None:
                        events.append(release)
            if not events:
                return
            horizon = min(events)
            if horizon <= now:
                raise RuntimeError(
                    f"cluster event loop stalled at t={now:.6f}s "
                    f"(next event {horizon:.6f}s)")
            clock.advance_to(horizon)

    def _build_report(self, offered: int,
                      replicas_final: int) -> ClusterReport:
        latencies = sorted(self._all_latencies)
        duration = max([r.retired_s or 0.0 for r in self.replicas]
                       + [self.clock.now_s])
        completed = len(latencies)
        telemetry_doc = None
        if self.telemetry is not None:
            # Replica clocks can run ahead of the fleet clock at the
            # end; finalize at the report duration so the last window
            # covers every collected completion.
            self.telemetry.finalize(duration)
            telemetry_doc = self.telemetry.report()
        # Replica device names appear in the report only when the fleet
        # is actually heterogeneous: homogeneous runs (including a
        # one-device --fleet) keep their pre-devices serialization
        # byte-for-byte.
        hetero = len({r.device_name for r in self.replicas}) > 1
        summaries = tuple(
            ReplicaSummary(index=r.index, name=r.name,
                           started_s=r.started_s, retired_s=r.retired_s,
                           outcome=r.outcome,
                           routed=self.router.routed.get(r.index, 0),
                           report=r.report,
                           slot=r.slot, incarnation=r.incarnation,
                           device=r.device_name if hetero else None)
            for r in self.replicas)
        slo_in_violation: Optional[bool] = None
        violations = recoveries = 0
        if self.monitor is not None:
            violations = self.monitor.violations
            recoveries = self.monitor.recoveries
            slo_in_violation = (self.autoscaler.in_violation
                                if self.autoscaler is not None
                                else self.monitor.in_violation)
        registry = self.obs.registry
        registry.gauge("cluster_replicas_final").set(replicas_final)
        registry.gauge("cluster_replicas_peak").set(self._peak_routable)
        registry.gauge("cluster_duration_seconds").set(duration)
        fleet_sheds = dict(self._fleet_sheds)
        if self.router.no_replica:
            fleet_sheds["no_replica"] = (fleet_sheds.get("no_replica", 0)
                                         + self.router.no_replica)
        return ClusterReport(
            policy=self.config.policy,
            duration_s=duration,
            offered=offered,
            completed=completed,
            requeued=self._requeued,
            no_replica_shed=self.router.no_replica,
            throughput_rps=completed / duration if duration > 0 else 0.0,
            latency_p50_ms=percentile(latencies, 50) * 1000,
            latency_p95_ms=percentile(latencies, 95) * 1000,
            latency_p99_ms=percentile(latencies, 99) * 1000,
            replicas_started=len(self.replicas),
            replicas_peak=self._peak_routable,
            replicas_final=replicas_final,
            scale_ups=(self.autoscaler.scale_ups
                       if self.autoscaler is not None else 0),
            drains=(self.autoscaler.drains
                    if self.autoscaler is not None else 0),
            kills=self._kills_applied,
            slo_violations=violations,
            slo_recoveries=recoveries,
            slo_in_violation=slo_in_violation,
            plan_cache=aggregate_plan_cache(
                tuple(r.report for r in self.replicas)),
            replicas=summaries,
            autoscale_actions=tuple(self.autoscaler.actions
                                    if self.autoscaler is not None else ()),
            shed_by_cause=fleet_sheds,
            health=(self.health.scorecard()
                    if self.health is not None else None),
            telemetry=telemetry_doc,
        )


def serve_cluster(trace: Sequence[Arrival],
                  config: ClusterConfig = ClusterConfig()) -> ClusterReport:
    """Convenience one-shot: run ``trace`` on a fresh fleet."""
    return Cluster(config).run(trace)
