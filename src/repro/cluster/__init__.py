"""Replicated serving fleet with pluggable routing and SLO-driven
autoscaling.

Generalises the single-device serving stack (:mod:`repro.serve`) to a
deterministic fleet of simulated GPUs on one shared virtual timeline:

* :class:`~repro.cluster.replica.Replica` — one fleet member wrapping
  a whole :class:`~repro.serve.scheduler.Server` (device, batcher,
  plan cache, optional fault injector), driven through the server's
  session API;
* :class:`~repro.cluster.router.Router` — pluggable request routing
  (``round-robin``, ``least-loaded``, ``p2c``, ``shape-affinity``,
  ``device-affinity`` for heterogeneous fleets);
* :class:`~repro.cluster.autoscaler.Autoscaler` — a closed loop over
  the SLO engine's edge-triggered violation/recovery events, scaling
  between bounds with graceful drains;
* :class:`~repro.cluster.health.HealthPlane` — the self-healing
  control plane: heartbeat probes with phi-accrual suspicion,
  supervisor restarts of crashed replicas, hedged requests and
  per-tenant retry budgets (attach via
  :attr:`~repro.cluster.fleet.ClusterConfig.health`);
* :class:`~repro.cluster.telemetry.FleetTelemetry` — the live-
  telemetry plane: windowed rollups, burn-rate alerting and per-
  replica flight recorders (attach via
  :attr:`~repro.cluster.fleet.ClusterConfig.telemetry`);
* :class:`~repro.cluster.fleet.Cluster` — the discrete-event driver
  tying them together; :func:`~repro.cluster.fleet.serve_cluster` is
  the one-shot convenience.

Everything runs on simulated time from seeded inputs: two same-seed
runs are byte-identical, replica for replica, span for span.
"""

from .autoscaler import AutoscalePolicy, Autoscaler
from .fleet import Cluster, ClusterConfig, serve_cluster
from .health import (HEALTH_SEED_STRIDE, HealthConfig, HealthPlane,
                     RetryBudget)
from .replica import REPLICA_SID_STRIDE, Replica
from .report import (ClusterReport, ReplicaSummary, aggregate_plan_cache,
                     aggregate_shed_causes)
from .router import (POLICIES, DeviceAffinity, LeastLoaded, PowerOfTwo,
                     RoundRobin, Router, RoutingPolicy, ShapeAffinity,
                     make_policy)
from .telemetry import FLEET_RECORDER, FleetTelemetry

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "Cluster",
    "ClusterConfig",
    "ClusterReport",
    "DeviceAffinity",
    "FLEET_RECORDER",
    "FleetTelemetry",
    "HEALTH_SEED_STRIDE",
    "HealthConfig",
    "HealthPlane",
    "LeastLoaded",
    "POLICIES",
    "PowerOfTwo",
    "REPLICA_SID_STRIDE",
    "Replica",
    "ReplicaSummary",
    "RetryBudget",
    "RoundRobin",
    "Router",
    "RoutingPolicy",
    "ShapeAffinity",
    "aggregate_plan_cache",
    "aggregate_shed_causes",
    "make_policy",
    "serve_cluster",
]
