"""One member of a serving fleet.

A :class:`Replica` wraps a whole single-device serving stack — a
:class:`~repro.serve.scheduler.Server` with its own simulated GPU,
dynamic batcher, plan cache and (optionally) fault injector — behind
the small surface the cluster driver needs: admit a routed request,
advance the replica's work up to the fleet's global time, report how
busy it is, and hand back its queue when it is drained or killed.

Each replica owns a private virtual clock (the server's), a private
metrics registry (its :class:`~repro.serve.stats.ServingStats` is a
view over it) and, when tracing is on, a private
:class:`~repro.obs.tracer.SimTracer` whose span ids start at a
replica-specific offset so the fleet's tracers merge into one export
without collisions (see :data:`REPLICA_SID_STRIDE` and
:func:`repro.obs.export.cluster_chrome_trace`).

The clock protocol mirrors a busy device: a replica's clock runs
*ahead* of the fleet clock while a dispatched batch is executing
(:meth:`Replica.busy_until`), and :meth:`Replica.poll` refuses to
release new work until the fleet clock catches up — which is exactly
what makes a one-replica cluster reproduce
:meth:`~repro.serve.scheduler.Server.run` decision for decision.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Tuple

from ..faults import FaultPlan
from ..obs.context import Observability, obs_session
from ..obs.tracer import SimTracer, TraceSampler
from ..serve.request import Request
from ..serve.scheduler import Server, ServerConfig
from ..serve.stats import StatsReport

#: Span-id block reserved per replica: replica ``i``'s tracer starts
#: at ``REPLICA_SID_STRIDE * (i + 1)``, leaving sids below the stride
#: to the fleet/router tracer.  Far larger than any run's span count.
REPLICA_SID_STRIDE = 10_000_000


class Replica:
    """One fleet member: a server plus its lifecycle state.

    Lifecycle: *active* (routable) → optionally *draining* (finishes
    in-flight work, queue handed back for re-routing, no new traffic)
    → *retired* (report frozen).  A *killed* replica retires
    immediately at the next batch boundary — completions its clock
    already recorded stand (the kill lands between batches, never
    mid-dispatch, keeping the timeline consistent).

    With the health plane attached two more states exist.  A *down*
    replica (crashed or mid-flap) has silently stopped serving: it
    stays formally active — traffic keeps queueing into it — until the
    failure detector notices the missing heartbeats.  A *suspected*
    replica is unrouted (``routable`` is False) but otherwise left
    alone: either a late heartbeat clears the suspicion or the
    supervisor :meth:`evict`\\ s it.  ``slot`` is the fleet position
    the replica occupies — its own index, or for a supervisor
    replacement the index of the original member it replaces — and
    ``incarnation`` counts restarts in that slot.
    """

    def __init__(self, index: int, config: ServerConfig,
                 advisor=None,
                 fault_plan: Optional[FaultPlan] = None,
                 fault_seed: Optional[int] = None,
                 tracing: bool = False,
                 trace_sample: int = 1,
                 slot: Optional[int] = None,
                 incarnation: int = 0):
        self.index = index
        self.name = f"replica{index}"
        self.slot = index if slot is None else slot
        self.incarnation = incarnation
        self.down = False
        self.suspected = False
        # The fleet monitor owns SLO evaluation; a per-replica monitor
        # would double-count violations on the merged timeline.  Same
        # for telemetry: FleetTelemetry registers this replica's
        # registry and caches itself, so a server-side pipeline would
        # double-ingest.
        config = replace(config, slo=None, telemetry=None)
        obs = Observability()
        self.server = Server(config, advisor=advisor,
                             fault_plan=fault_plan, fault_seed=fault_seed,
                             obs=obs)
        if tracing:
            tracer = SimTracer(self.server.clock,
                               first_sid=REPLICA_SID_STRIDE * (index + 1))
            if trace_sample > 1:
                tracer = TraceSampler(tracer, trace_sample)
            obs.tracer = tracer
        self.tracer = obs.tracer
        self.alive = True
        self.draining = False
        self.drain_started_s: Optional[float] = None
        self.started_s = 0.0
        self.retired_s: Optional[float] = None
        self.outcome = "ran"
        self.report: Optional[StatsReport] = None
        self._root_span = None

    # -- queries -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Still doing work (alive and not yet retired)."""
        return self.alive and self.report is None

    @property
    def routable(self) -> bool:
        """Eligible to receive new traffic from the router.  A *down*
        replica stays routable until the detector suspects it — the
        fleet cannot route around a death it has not observed."""
        return self.active and not self.draining and not self.suspected

    @property
    def queue_depth(self) -> int:
        return len(self.server.queue) if self.server.queue is not None else 0

    @property
    def device_name(self) -> str:
        """Display name of the device this replica simulates."""
        return self.server.config.device.name

    @property
    def state(self) -> str:
        """One-word lifecycle state for telemetry rollups: the live
        states (``down`` / ``suspected`` / ``draining`` / ``active``)
        while serving, the retirement outcome afterwards."""
        if not self.active:
            return self.outcome
        if self.down:
            return "down"
        if self.suspected:
            return "suspected"
        if self.draining:
            return "draining"
        return "active"

    def busy_until(self, now_s: float) -> Optional[float]:
        """The replica clock when it runs ahead of the fleet clock
        (a batch is executing until then); ``None`` when idle."""
        t = self.server.clock.now_s
        return t if t > now_s else None

    def next_release_s(self) -> Optional[float]:
        """When the max-wait guard will release the oldest lane.
        ``None`` while down: a dead process releases nothing, and
        advertising a release time would stall the fleet event loop
        on an event that can never fire."""
        if self.down:
            return None
        if self.server.queue is None or not len(self.server.queue):
            return None
        return self.server.batcher.release_at(self.server.queue)

    def load(self, now_s: float) -> Tuple[int, float]:
        """Routing load: (queued requests, busy seconds remaining).
        Compared lexicographically; ties break on replica index."""
        busy = self.server.clock.now_s - now_s
        return (self.queue_depth, busy if busy > 0 else 0.0)

    # -- lifecycle ---------------------------------------------------------

    def begin(self, now_s: float) -> "Replica":
        """Join the fleet at simulated time ``now_s``."""
        self.started_s = now_s
        self.server.clock.advance_to(now_s)
        self.server.begin()
        if self.tracer.enabled:
            self._root_span = self.tracer.span("replica.run", cat="cluster",
                                               replica=self.index,
                                               device=self.server.config
                                               .device.name)
            self._root_span.__enter__()
        return self

    def admit(self, request: Request) -> bool:
        """Offer one routed request to this replica's admission queue."""
        return self.server.admit(request)

    def poll(self, now_s: float, drain: bool = False) -> None:
        """Advance this replica's serving loop up to fleet time
        ``now_s``.

        A replica whose clock is ahead is mid-batch: it does nothing
        until the fleet clock catches up, so every arrival routed in
        the meantime is queued before the next release decision —
        the same order :meth:`Server.run` produces on one device.
        ``drain`` releases partial batches immediately (no arrivals
        left anywhere in the fleet).

        A *down* replica does nothing at all — its private clock
        freezes where the crash left it, so when (if) it recovers from
        a flap, the first poll catches the clock up and sheds whatever
        expired while it was dead.
        """
        if not self.active or self.down:
            return
        clock = self.server.clock
        if clock.now_s > now_s:
            return                      # busy until clock.now_s
        clock.advance_to(now_s)
        with obs_session(self.server.obs):
            self.server.shed_expired()
            while True:
                if not self.server.pump(drain=drain or self.draining):
                    break
                if clock.now_s > now_s:
                    break               # ran past the horizon; now busy
                self.server.shed_expired()

    def start_drain(self, now_s: float) -> List[Request]:
        """Stop accepting traffic and hand back the queued requests.

        The requests are *requeued*, not shed: they go back to the
        router for re-routing (counted under the ``requeued`` cause in
        this replica's :attr:`~repro.serve.stats.StatsReport
        .shed_by_cause`, deliberately excluded from its shed rate —
        they complete elsewhere).  In-flight batches finish; the
        cluster retires the replica once it goes idle.
        """
        self.draining = True
        self.drain_started_s = now_s
        evacuated = self.server.queue.drain(for_requeue=True)
        if evacuated:
            self.server.stats.record_shed("requeued", len(evacuated))
            self.tracer.event("replica.drain", replica=self.index,
                              requeued=len(evacuated))
        return evacuated

    def kill(self, now_s: float) -> List[Request]:
        """Fail the replica at the next batch boundary.

        Queued requests are handed back for re-routing exactly as in
        :meth:`start_drain`; the report is frozen immediately.
        """
        evacuated = self.server.queue.drain(for_requeue=True)
        if evacuated:
            self.server.stats.record_shed("requeued", len(evacuated))
        self.tracer.event("replica.killed", replica=self.index,
                          requeued=len(evacuated))
        self.alive = False
        self.retire(max(now_s, self.server.clock.now_s), outcome="killed")
        return evacuated

    def evict(self, now_s: float, outcome: str = "crashed") -> List[Request]:
        """Supervisor eviction: the health plane gave up on this
        replica (``outcome='crashed'`` when it is actually down,
        ``'evicted'`` for a responsive replica evicted on a false
        suspicion that crossed the eviction threshold).

        Mechanically a :meth:`kill`, but reached by *observation* —
        missed heartbeats — rather than by a schedule, and typically
        long after the actual death: everything queued in the
        meantime is only now evacuated for (budgeted) re-routing.
        """
        evacuated = self.server.queue.drain(for_requeue=True)
        if evacuated:
            self.server.stats.record_shed("requeued", len(evacuated))
        self.tracer.event("replica.evicted", replica=self.index,
                          requeued=len(evacuated))
        self.alive = False
        self.retire(max(now_s, self.server.clock.now_s), outcome=outcome)
        return evacuated

    def retire(self, now_s: float, outcome: str = "ran") -> StatsReport:
        """Freeze the replica's report at ``now_s`` (idempotent)."""
        if self.report is not None:
            return self.report
        self.outcome = outcome
        self.retired_s = now_s
        self.server.clock.advance_to(now_s)
        with obs_session(self.server.obs):
            self.report = self.server.finish()
        if self._root_span is not None:
            self._root_span.annotate(outcome=outcome)
            self._root_span.__exit__(None, None, None)
            self._root_span = None
        return self.report
