"""The fleet's self-healing plane: detection, restarts, hedging,
retry budgets.

Before this module the cluster's only failure story was the scheduled
kill list — the fleet was *told* who died, exactly at death time.
:class:`HealthPlane` replaces that with observation and recovery, all
on the shared virtual clock and all byte-deterministic:

* **Failure detection** — heartbeat probes every
  ``probe_interval_s``.  A replica that is up answers; one that is
  down (crashed, flapping) or too degraded to answer in time does
  not.  The suspicion score is phi-accrual-style: ``phi = intervals
  since the last heartbeat``.  At ``suspect_after`` the replica is
  *suspected* — the router stops sending it traffic but its queue is
  left alone (a late heartbeat clears the suspicion as a *false*
  one).  At ``evict_after`` the supervisor gives up: the queue is
  evacuated through the retry budget and the replica is retired.

* **Self-healing** — every supervisor-observed death (eviction or
  scheduled kill) schedules a replacement after ``restart_delay_s``
  plus seeded jitter, up to ``max_restarts`` per slot.  The
  replacement is a brand-new :class:`~repro.cluster.replica.Replica`
  with a **cold plan cache**: its warmup is visible as plan-cache
  misses and a latency bump, and the shape-affinity router re-pins
  shapes the dead replica owned.

* **Tail defense** — with ``hedge_after_s`` set, a request queued
  longer than the hedge deadline is re-dispatched to a second replica
  (least-loaded among the other routable members).  First completion
  wins; the losing copy is cancelled out of its queue (the
  ``hedge_cancelled`` shed cause) or, if already in flight, its
  completion is dropped from the fleet accounting.  Every hedge
  resolves as exactly one win or one cancel, so the scorecard
  reconciles: ``hedges_issued == hedge_wins + hedge_cancels``.

* **Retry budgets** — hedges and involuntary requeues spend from a
  per-tenant budget (``retry_budget_min`` plus ``retry_budget_ratio``
  of that tenant's offered traffic), capping fleet-wide retry storms
  when a fault plan degrades everyone at once.  A requeue the budget
  refuses is shed fleet-side under ``retry_budget_exhausted``.

Determinism: probes, chaos transitions and restarts are processed in
time order with replica-index tie-breaks; the only randomness is the
restart-jitter RNG, seeded from the cluster seed on its own stream.
With ``ClusterConfig.health = None`` none of this code runs and the
fleet behaves byte-identically to the pre-health cluster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..faults.fleet import FleetFaultPlan
from ..serve.request import Request
from .replica import Replica
from .router import _least_loaded

#: The restart-jitter RNG is seeded ``cluster seed + this (prime)
#: stride`` so it never shares a stream with the per-replica fault
#: injectors (stride 7919) or the p2c router (raw seed).
HEALTH_SEED_STRIDE = 104729


@dataclass(frozen=True)
class HealthConfig:
    """Tuning for the self-healing plane (see the module docstring).

    The defaults suit the smoke workloads (tens-of-ms latencies):
    20 ms probes, suspicion after 3 missed intervals, eviction after
    6.  ``hedge_after_s=None`` disables hedging;
    ``max_restarts=0`` disables the supervisor (detection only).
    """

    probe_interval_s: float = 0.02
    #: Suspicion threshold in missed probe intervals (phi): the router
    #: stops sending traffic here but the queue is left alone.
    suspect_after: float = 3.0
    #: Eviction threshold in missed intervals: the queue is evacuated
    #: and a restart is scheduled.  Must be >= ``suspect_after``.
    evict_after: float = 6.0
    restart_delay_s: float = 0.25
    #: Seeded uniform jitter added to every restart delay.
    restart_jitter_s: float = 0.05
    #: Replacement budget per slot (origin index); 0 disables restarts.
    max_restarts: int = 2
    #: Queue age after which the oldest queued request is hedged to a
    #: second replica; ``None`` disables hedging.
    hedge_after_s: Optional[float] = None
    #: Per-tenant retry allowance: ``retry_budget_min`` plus this
    #: fraction of the tenant's offered requests.
    retry_budget_ratio: float = 0.1
    retry_budget_min: int = 10

    def __post_init__(self) -> None:
        if self.probe_interval_s <= 0:
            raise ValueError(f"probe_interval_s must be positive, "
                             f"got {self.probe_interval_s}")
        if self.suspect_after <= 0:
            raise ValueError(f"suspect_after must be positive, "
                             f"got {self.suspect_after}")
        if self.evict_after < self.suspect_after:
            raise ValueError(
                f"evict_after ({self.evict_after}) must be >= "
                f"suspect_after ({self.suspect_after})")
        if self.restart_delay_s < 0 or self.restart_jitter_s < 0:
            raise ValueError("restart delay/jitter must be non-negative")
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, "
                             f"got {self.max_restarts}")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError(f"hedge_after_s must be positive, "
                             f"got {self.hedge_after_s}")
        if self.retry_budget_ratio < 0 or self.retry_budget_min < 0:
            raise ValueError("retry budget parameters must be non-negative")


class RetryBudget:
    """Per-tenant retry token accounting.

    A tenant (the request's model name) may spend
    ``floor + ratio * offered(tenant)`` retries — hedges plus
    involuntary requeues — over the run.  Deterministic: pure counting,
    no clocks, no RNG.
    """

    def __init__(self, ratio: float, floor: int):
        self.ratio = ratio
        self.floor = floor
        self.offers: Dict[str, int] = {}
        self.spent: Dict[str, int] = {}
        self.exhaustions = 0

    def on_offer(self, tenant: str) -> None:
        self.offers[tenant] = self.offers.get(tenant, 0) + 1

    def allowance(self, tenant: str) -> int:
        return self.floor + int(self.ratio * self.offers.get(tenant, 0))

    def allow(self, tenant: str) -> bool:
        """Spend one retry token if the tenant has any left."""
        spent = self.spent.get(tenant, 0)
        if spent < self.allowance(tenant):
            self.spent[tenant] = spent + 1
            return True
        self.exhaustions += 1
        return False

    def to_dict(self) -> dict:
        return {
            "exhaustions": self.exhaustions,
            "offers": int(sum(self.offers.values())),
            "spent": int(sum(self.spent.values())),
            "tenants_exhausted": sorted(
                t for t, n in self.spent.items()
                if n >= self.allowance(t)),
        }


class HealthPlane:
    """Failure detector + supervisor + hedger for one
    :class:`~repro.cluster.fleet.Cluster`.

    The cluster calls :meth:`register` for every spawned replica,
    :meth:`poll` once per event-loop pass, folds
    :meth:`next_event_s` into its event horizon, and routes
    completions/evacuations through :meth:`on_completion` /
    :meth:`plan_requeue`.  :meth:`scorecard` is the resilience section
    of the :class:`~repro.cluster.report.ClusterReport`.
    """

    def __init__(self, config: HealthConfig, cluster,
                 seed: int, plan: Optional[FleetFaultPlan] = None):
        from ..rng import make_rng

        self.config = config
        self.cluster = cluster
        self.plan = plan
        self.hedging = config.hedge_after_s is not None
        self._rng = make_rng(seed + HEALTH_SEED_STRIDE)
        #: Next probe pass (the first one runs after one interval).
        self._probe_due_s = config.probe_interval_s
        #: Replica index -> time of the last heartbeat received.
        self._last_hb: Dict[int, float] = {}
        #: Slot (origin index) -> the live incarnation, if any.
        self._current: Dict[int, Replica] = {}
        self._restarts_by_slot: Dict[int, int] = {}
        self._restart_heap: List[Tuple[float, int, int]] = []
        self._restart_seq = 0
        # Fleet-chaos schedule: (time, slot, kind) with kind one of
        # "crash" | "down" | "up", consumed by a cursor in time order.
        events: List[Tuple[float, int, int, str]] = []
        if plan is not None:
            for t, slot in plan.crash_events():
                events.append((t, slot, 0, "crash"))
            for t, slot, down in plan.flap_events():
                events.append((t, slot, 1, "down" if down else "up"))
        self._chaos = sorted(events)
        self._chaos_i = 0
        self.budget = RetryBudget(config.retry_budget_ratio,
                                  config.retry_budget_min)
        #: rid -> pending hedge record; popped on resolution.
        self._hedges: Dict[int, dict] = {}
        #: rids whose next completion is a cancelled hedge copy —
        #: dropped from the fleet accounting when it surfaces.
        self._ignore: Set[int] = set()
        # Scorecard counters.
        self.probes = 0
        self.detections = 0
        self.false_suspicions = 0
        self.evictions = 0
        self.kills_observed = 0
        self.flap_downs = 0
        self.restarts = 0
        self.restarts_denied = 0
        self.hedges_issued = 0
        self.hedge_wins = 0
        self.hedge_cancels = 0
        self.hedges_denied = 0

    # Read through to the cluster's observability context on every
    # use: the fleet tracer is attached by ``enable_tracing()`` *after*
    # the cluster (and this plane) is constructed.
    @property
    def _tracer(self):
        return self.cluster.obs.tracer

    @property
    def _registry(self):
        return self.cluster.obs.registry

    # -- lifecycle plumbing ------------------------------------------------

    def register(self, replica: Replica, now_s: float) -> None:
        """Track a newly spawned replica (initial fleet, autoscaler
        additions and supervisor replacements all pass through)."""
        self._last_hb[replica.index] = now_s
        self._current[replica.slot] = replica

    @property
    def crashes(self) -> int:
        """Supervisor-observed deaths: evictions plus scheduled kills.
        By construction ``crashes == restarts + restarts_pending +
        restarts_denied`` — the reconciliation the tests assert."""
        return self.evictions + self.kills_observed

    @property
    def restarts_pending(self) -> int:
        return len(self._restart_heap)

    def on_kill(self, slot: int, now_s: float) -> None:
        """A scheduled kill fired: the supervisor saw a death and
        schedules the replacement (kill-is-forever is gone)."""
        self.kills_observed += 1
        self._current.pop(slot, None)
        self._schedule_restart(slot, now_s)

    def _schedule_restart(self, slot: int, now_s: float) -> None:
        done = self._restarts_by_slot.get(slot, 0)
        if done >= self.config.max_restarts:
            self.restarts_denied += 1
            return
        self._restarts_by_slot[slot] = done + 1
        delay = self.config.restart_delay_s
        if self.config.restart_jitter_s:
            delay += self.config.restart_jitter_s * float(self._rng.random())
        self._restart_seq += 1
        heapq.heappush(self._restart_heap,
                       (now_s + delay, self._restart_seq, slot))

    # -- the event-loop hooks ----------------------------------------------

    def next_event_s(self) -> float:
        """The earliest pending health event (there is always a next
        probe, so this is always finite)."""
        t = self._probe_due_s
        if self._restart_heap and self._restart_heap[0][0] < t:
            t = self._restart_heap[0][0]
        if self._chaos_i < len(self._chaos):
            t_chaos = self._chaos[self._chaos_i][0]
            if t_chaos < t:
                t = t_chaos
        return t

    def poll(self, now_s: float) -> None:
        """Apply everything due at ``now_s``: chaos transitions first
        (deaths happen), then restarts, then heartbeat probes (which
        observe the new state), then hedging."""
        self._apply_chaos(now_s)
        self._apply_restarts(now_s)
        interval = self.config.probe_interval_s
        while self._probe_due_s <= now_s:
            t = self._probe_due_s
            self._probe_pass(t)
            if self.hedging:
                self._hedge_pass(t)
            self._probe_due_s = t + interval

    def _apply_chaos(self, now_s: float) -> None:
        while (self._chaos_i < len(self._chaos)
               and self._chaos[self._chaos_i][0] <= now_s):
            t, slot, _, kind = self._chaos[self._chaos_i]
            self._chaos_i += 1
            replica = self._current.get(slot)
            if replica is None or not replica.active:
                continue
            if kind == "crash":
                if not replica.down:
                    replica.down = True
                    self._tracer.add_span(
                        "fault.replica_crash", cat="faults",
                        start_s=t, end_s=t, replica=replica.index, slot=slot)
            elif kind == "down":
                if not replica.down:
                    replica.down = True
                    self.flap_downs += 1
                    self._tracer.add_span(
                        "fault.replica_flap", cat="faults",
                        start_s=t, end_s=t, replica=replica.index,
                        slot=slot, down=True)
            else:  # "up" — flap self-recovery; probes clear suspicion.
                if replica.down:
                    replica.down = False
                    self._tracer.add_span(
                        "fault.replica_flap", cat="faults",
                        start_s=t, end_s=t, replica=replica.index,
                        slot=slot, down=False)

    def _apply_restarts(self, now_s: float) -> None:
        while self._restart_heap and self._restart_heap[0][0] <= now_s:
            t, _, slot = heapq.heappop(self._restart_heap)
            replica = self.cluster._spawn(now_s, slot=slot)
            self.restarts += 1
            self._registry.counter("cluster_restarts_total").inc()
            self._tracer.add_span(
                "health.restart", cat="health", start_s=now_s, end_s=now_s,
                slot=slot, replica=replica.index,
                incarnation=replica.incarnation, cold_cache=True)

    def _probe_pass(self, t: float) -> None:
        interval = self.config.probe_interval_s
        for replica in list(self.cluster.replicas):
            if not replica.active:
                continue
            self.probes += 1
            last = self._last_hb[replica.index]
            responsive = not replica.down
            if responsive and self.plan is not None:
                factor = self.plan.degrade_factor(replica.slot, t)
                if factor > 1.0:
                    # A degraded replica answers every ``factor``
                    # intervals instead of every one.
                    responsive = t - last + 1e-12 >= factor * interval
            if responsive:
                self._last_hb[replica.index] = t
                if replica.suspected:
                    replica.suspected = False
                    self.false_suspicions += 1
                    self._tracer.add_span(
                        "health.recover", cat="health", start_s=t, end_s=t,
                        replica=replica.index, slot=replica.slot)
                continue
            phi = (t - last) / interval
            if not replica.suspected and phi >= self.config.suspect_after:
                replica.suspected = True
                self.detections += 1
                self._registry.counter("cluster_suspicions_total").inc()
                self._tracer.add_span(
                    "health.suspect", cat="health", start_s=t, end_s=t,
                    replica=replica.index, slot=replica.slot,
                    phi=round(phi, 3))
            if phi >= self.config.evict_after:
                self._evict(replica, t)

    def _evict(self, replica: Replica, t: float) -> None:
        """Give up on a suspected replica: evacuate its queue through
        the retry budget, retire it, schedule the replacement."""
        outcome = "crashed" if replica.down else "evicted"
        evacuated = replica.evict(t, outcome=outcome)
        self.evictions += 1
        self._current.pop(replica.slot, None)
        self._registry.counter("cluster_evictions_total").inc()
        self._tracer.add_span(
            "health.evict", cat="health", start_s=t, end_s=t,
            replica=replica.index, slot=replica.slot, outcome=outcome,
            evacuated=len(evacuated))
        telemetry = getattr(self.cluster, "telemetry", None)
        if telemetry is not None:
            telemetry.on_eviction(replica, t)
        self._schedule_restart(replica.slot, t)
        self.cluster._requeue_failed(evacuated, t)

    # -- hedging -----------------------------------------------------------

    def _hedge_pass(self, t: float) -> None:
        hedge_after = self.config.hedge_after_s
        replicas = self.cluster.replicas
        for replica in list(replicas):
            if not replica.active or replica.queue_depth == 0:
                continue
            head = replica.server.queue.oldest_lane()
            if head is None:
                continue
            request = head[1]
            if t - request.arrival_s < hedge_after:
                continue
            rid = request.rid
            if rid in self._hedges or rid in self._ignore:
                continue
            eligible = [r for r in replicas
                        if r.routable and r is not replica]
            if not eligible:
                continue
            target = _least_loaded(eligible, t)
            if target.queue_depth >= target.server.config.queue_depth:
                continue            # no room; retry next pass
            if not self.budget.allow(request.model):
                self.hedges_denied += 1
                continue
            target.admit(request)
            self._hedges[rid] = {"primary": replica, "target": target,
                                 "request": request, "dead": 0}
            self.hedges_issued += 1
            self._registry.counter("cluster_hedges_total").inc()
            self._tracer.add_span(
                "hedge.issued", cat="health", start_s=t, end_s=t,
                rid=rid, from_replica=replica.index,
                to_replica=target.index,
                queued_s=round(t - request.arrival_s, 6))

    def on_completion(self, rid: int, replica: Replica,
                      now_s: float) -> bool:
        """First-completion-wins arbitration; returns whether this
        completion counts fleet-side (the losing copy of a hedged
        request does not)."""
        if rid in self._ignore:
            self._ignore.discard(rid)
            return False
        hedge = self._hedges.get(rid)
        if hedge is None:
            return True
        del self._hedges[rid]
        won = replica is hedge["target"]
        loser = hedge["primary"] if won else hedge["target"]
        if won:
            self.hedge_wins += 1
        else:
            self.hedge_cancels += 1
        self._tracer.add_span(
            "hedge.win" if won else "hedge.cancel", cat="health",
            start_s=now_s, end_s=now_s, rid=rid,
            completed_on=replica.index, cancelled_on=loser.index)
        if loser.active:
            request = hedge["request"]
            removed = loser.server.queue.remove(request.key, rid)
            if removed is not None:
                loser.server.stats.record_shed("hedge_cancelled", 1)
            else:
                # In flight (or already shed): swallow its completion
                # if one ever surfaces.
                self._ignore.add(rid)
        return True

    def plan_requeue(self, requests: List[Request]
                     ) -> Tuple[List[Request], List[Request]]:
        """Split an involuntary evacuation into ``(route, denied)``.

        A pending hedge's copy is skipped outright — its twin on the
        other replica still serves the rid — unless both copies are
        now dead, in which case the hedge resolves as a cancel and the
        request re-enters the (budgeted) requeue like any other.
        Requests the tenant budget refuses land in ``denied`` and are
        shed fleet-side under ``retry_budget_exhausted``.
        """
        route: List[Request] = []
        denied: List[Request] = []
        for request in requests:
            hedge = self._hedges.get(request.rid)
            if hedge is not None:
                hedge["dead"] += 1
                if hedge["dead"] < 2:
                    continue        # the other copy is still live
                del self._hedges[request.rid]
                self.hedge_cancels += 1
            if self.budget.allow(request.model):
                route.append(request)
            else:
                denied.append(request)
        return route, denied

    # -- end of run --------------------------------------------------------

    def finish(self) -> None:
        """Resolve anything still pending so the scorecard reconciles
        exactly: unresolved hedges (neither copy completed) count as
        cancels."""
        if self._hedges:
            self.hedge_cancels += len(self._hedges)
            self._hedges.clear()

    def scorecard(self) -> dict:
        """The resilience section of the cluster report (stable key
        order via sorted serialization in ``ClusterReport.to_dict``)."""
        return {
            "probes": self.probes,
            "detections": self.detections,
            "false_suspicions": self.false_suspicions,
            "crashes": self.crashes,
            "evictions": self.evictions,
            "kills_observed": self.kills_observed,
            "flap_downs": self.flap_downs,
            "restarts": self.restarts,
            "restarts_pending": self.restarts_pending,
            "restarts_denied": self.restarts_denied,
            "hedges_issued": self.hedges_issued,
            "hedge_wins": self.hedge_wins,
            "hedge_cancels": self.hedge_cancels,
            "hedges_denied": self.hedges_denied,
            "retry_budget": self.budget.to_dict(),
        }
