"""Metric definitions and runtime-weighted aggregation.

Section V-C of the paper evaluates each implementation by profiling
its *top kernels* and taking "a weighted average of those top kernels
to get the final estimate of performance metrics for that
implementation.  The weight of each kernel is determined by the
percentage of its runtime in the whole implementation."  This module
implements exactly that aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Iterable, List, Sequence

#: The five metrics (and IPC) of Fig. 6, in the paper's order.
METRIC_NAMES = (
    "achieved_occupancy",
    "ipc",
    "warp_execution_efficiency",
    "gld_efficiency",
    "gst_efficiency",
    "shared_efficiency",
)

#: The two hardware-counter events the paper collects.
EVENT_NAMES = (
    "shared_load_bank_conflicts",
    "shared_store_bank_conflicts",
)


@dataclass(frozen=True)
class MetricSummary:
    """Runtime-weighted metric estimate for one implementation/config."""

    runtime_s: float
    achieved_occupancy: float
    ipc: float
    warp_execution_efficiency: float
    gld_efficiency: float
    gst_efficiency: float
    shared_efficiency: float
    shared_load_bank_conflicts: int
    shared_store_bank_conflicts: int

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def weighted_summary(timings: Sequence["KernelTiming"],  # noqa: F821
                     top_n: int = None) -> MetricSummary:
    """Aggregate kernel timings into one implementation-level estimate.

    Parameters
    ----------
    timings:
        Per-kernel :class:`~repro.gpusim.timing.KernelTiming` records.
    top_n:
        Restrict to the N longest-running kernels first (the paper
        profiles "top kernels"); ``None`` uses all of them.
    """
    if not timings:
        raise ValueError("cannot summarise an empty timing list")
    ordered = sorted(timings, key=lambda t: t.time_s, reverse=True)
    if top_n is not None:
        if top_n <= 0:
            raise ValueError(f"top_n must be positive, got {top_n}")
        ordered = ordered[:top_n]
    total = sum(t.time_s for t in ordered)
    # Weighted averages over runtime share.
    def wavg(attr: str) -> float:
        return sum(getattr(t, attr) * t.time_s for t in ordered) / total

    return MetricSummary(
        runtime_s=sum(t.time_s for t in timings),
        achieved_occupancy=wavg("achieved_occupancy"),
        ipc=wavg("ipc"),
        warp_execution_efficiency=wavg("warp_execution_efficiency"),
        gld_efficiency=wavg("gld_efficiency"),
        gst_efficiency=wavg("gst_efficiency"),
        shared_efficiency=wavg("shared_efficiency"),
        shared_load_bank_conflicts=sum(t.shared_load_bank_conflicts for t in ordered),
        shared_store_bank_conflicts=sum(t.shared_store_bank_conflicts for t in ordered),
    )


def runtime_shares(timings: Sequence["KernelTiming"]) -> Dict[str, float]:  # noqa: F821
    """Fraction of total runtime per kernel-role group (Fig. 4)."""
    total = sum(t.time_s for t in timings)
    if total <= 0:
        raise ValueError("timings have no runtime")
    shares: Dict[str, float] = {}
    for t in timings:
        key = t.spec.role.value
        shares[key] = shares.get(key, 0.0) + t.time_s / total
    return shares


def kernel_shares(timings: Sequence["KernelTiming"]) -> Dict[str, float]:  # noqa: F821
    """Fraction of total runtime per kernel *name* (finer than roles)."""
    total = sum(t.time_s for t in timings)
    if total <= 0:
        raise ValueError("timings have no runtime")
    shares: Dict[str, float] = {}
    for t in timings:
        shares[t.spec.name] = shares.get(t.spec.name, 0.0) + t.time_s / total
    return shares
