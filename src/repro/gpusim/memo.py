"""Switchable memoization for the pure analytic layer.

Every quantity the gpusim substrate derives — bank-conflict degrees,
coalescing transactions, occupancy, and whole kernel timings — is a
pure function of frozen, hashable inputs (:class:`DeviceSpec`,
:class:`KernelSpec` and their nested access patterns).  The figure
pipelines and the serving scheduler re-derive the same values millions
of times across sweeps, so the hot functions are wrapped with
:func:`memoized`, a registry-aware ``lru_cache`` that can be disabled
and cleared globally:

* :func:`set_enabled` — turn memoization off (every call recomputes),
  used by the benchmarks to measure the unmemoized baseline;
* :func:`clear_all` — drop every registered cache, used to measure
  true cold-start costs and by tests that need isolation;
* :func:`stats` — per-function ``hits/misses/size`` counters.

``functools.lru_cache`` is thread-safe, so memoized functions may be
called concurrently from the :mod:`repro.core.parallel` executor.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List, Optional

#: Registered (name, cached callable) pairs, in decoration order.
_REGISTRY: List[tuple] = []
_ENABLED = True


def memoized(maxsize: Optional[int] = 65536) -> Callable:
    """Decorator: memoize a pure function of hashable arguments.

    The wrapper consults the module-wide enable flag on every call, so
    :func:`set_enabled` takes effect immediately — including for
    callers that imported the function before the flag changed.
    """

    def deco(fn: Callable) -> Callable:
        cached = functools.lru_cache(maxsize=maxsize)(fn)
        _REGISTRY.append((f"{fn.__module__}.{fn.__qualname__}", cached))

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if _ENABLED:
                return cached(*args, **kwargs)
            return fn(*args, **kwargs)

        wrapper.__wrapped__ = fn
        wrapper.cache = cached
        return wrapper

    return deco


def cached_instance_hash(cls):
    """Make a frozen dataclass compute its hash once per instance.

    Dataclass hashes walk every field (and nested frozen dataclasses)
    on *every* call; memo-cache keys hash the same :class:`DeviceSpec`
    / access-pattern instances millions of times across a sweep.  The
    wrapped ``__hash__`` stashes the value in the instance ``__dict__``
    (``object.__setattr__`` bypasses the frozen guard), which is sound
    because every field is immutable.  The hot path is a plain
    attribute read — the except arm only runs once per instance.
    """
    base_hash = cls.__hash__

    def __hash__(self, _base=base_hash):
        try:
            return self._cached_hash
        except AttributeError:
            h = _base(self)
            object.__setattr__(self, "_cached_hash", h)
            return h

    cls.__hash__ = __hash__
    return cls


def set_enabled(enabled: bool) -> None:
    """Globally enable/disable all registered memo caches."""
    global _ENABLED
    _ENABLED = bool(enabled)


def is_enabled() -> bool:
    return _ENABLED


def clear_all() -> None:
    """Drop every registered cache (counters reset too)."""
    for _, cached in _REGISTRY:
        cached.cache_clear()


def stats() -> Dict[str, Dict[str, int]]:
    """Per-function cache statistics, keyed by qualified name."""
    out: Dict[str, Dict[str, int]] = {}
    for name, cached in _REGISTRY:
        info = cached.cache_info()
        out[name] = {"hits": info.hits, "misses": info.misses,
                     "size": info.currsize}
    return out
