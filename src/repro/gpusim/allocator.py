"""Device memory allocator with peak tracking.

Models cudaMalloc/cudaFree at the granularity the memory-usage study
(paper section V-B, Fig. 5) needs: every live buffer counts against
the device's 12 GB, the high-water mark is recorded (that is what
``nvidia-smi`` reported in the paper), and exceeding capacity raises
:class:`~repro.errors.DeviceOOMError` — the "program crush" behaviour
the paper observed for FFT implementations on adverse shapes.

Allocations are rounded up to a 512-byte granularity like the CUDA
driver's suballocator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from ..errors import AllocationError, DeviceOOMError, MemoryPressureError
from .device import DeviceSpec


#: cudaMalloc-style allocation granularity, bytes.  Public so the
#: framework adapters' fast-path peak replay rounds identically.
ALLOC_GRANULARITY = 512
_GRANULARITY = ALLOC_GRANULARITY


@dataclass(frozen=True)
class Buffer:
    """Handle to one live device allocation."""

    handle: int
    size: int
    rounded_size: int
    tag: str


class DeviceAllocator:
    """Tracks live device allocations and the peak footprint.

    Parameters
    ----------
    device:
        The device whose capacity bounds allocations.
    baseline:
        Bytes considered permanently allocated before the workload runs
        (CUDA context + framework runtime).  The paper's ``nvidia-smi``
        numbers include this; ~100 MB is typical for CUDA 7.5.

    An *observer* callable may be attached with :meth:`set_observer`;
    it receives ``(event, buffer, in_use)`` on every successful
    ``alloc``/``free``.  The serving scheduler uses this to keep a
    live memory watermark per batch without wrapping every call site.
    """

    def __init__(self, device: DeviceSpec, baseline: int = 100 * 2**20):
        if baseline < 0:
            raise AllocationError(f"baseline must be non-negative, got {baseline}")
        if baseline > device.global_memory_bytes:
            raise AllocationError("baseline exceeds device capacity")
        self.device = device
        self.baseline = baseline
        self._live: Dict[int, Buffer] = {}
        self._next_handle = 1
        self._in_use = baseline
        self._peak = baseline
        self._observer: Optional[Callable[[str, Buffer, int], None]] = None
        self._pressure: Optional[Callable[[], int]] = None

    def set_observer(self,
                     fn: Optional[Callable[[str, Buffer, int], None]]) -> None:
        """Attach (or with ``None`` detach) the alloc/free observer."""
        self._observer = fn

    def set_pressure(self, fn: Optional[Callable[[], int]]) -> None:
        """Attach (or with ``None`` detach) a memory-pressure source.

        ``fn`` returns the number of bytes currently reserved away from
        the workload (the fault-injection plane's simulated co-tenant /
        fragmentation pressure).  An allocation that would fit the bare
        device but not the pressured one raises
        :class:`~repro.errors.MemoryPressureError` instead of the plain
        :class:`~repro.errors.DeviceOOMError`, so resilient callers can
        distinguish "retry smaller / later" from "will never fit".
        """
        self._pressure = fn

    # -- queries -----------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Bytes currently allocated (including the baseline)."""
        return self._in_use

    @property
    def peak(self) -> int:
        """High-water mark of :attr:`in_use` (the Fig. 5 quantity)."""
        return self._peak

    @property
    def free_bytes(self) -> int:
        return self.device.global_memory_bytes - self._in_use

    @property
    def reserved_bytes(self) -> int:
        """Bytes currently withheld by the attached pressure source
        (0 when no source is attached)."""
        if self._pressure is None:
            return 0
        return max(0, int(self._pressure()))

    @property
    def observed(self) -> bool:
        """Whether an alloc/free observer is attached (observers see
        per-buffer events the memoized replay path skips)."""
        return self._observer is not None

    @property
    def live_buffers(self) -> int:
        return len(self._live)

    def buffers(self) -> Iterator[Buffer]:
        return iter(self._live.values())

    # -- mutation ------------------------------------------------------------

    def alloc(self, size: int, tag: str = "") -> Buffer:
        """Allocate ``size`` bytes; raises :class:`DeviceOOMError` when
        the device cannot hold it."""
        if size <= 0:
            raise AllocationError(f"allocation size must be positive, got {size}")
        rounded = math.ceil(size / _GRANULARITY) * _GRANULARITY
        capacity = self.device.global_memory_bytes
        if self._in_use + rounded > capacity:
            raise DeviceOOMError(rounded, self._in_use, capacity)
        reserved = self.reserved_bytes
        if reserved and self._in_use + rounded > capacity - reserved:
            raise MemoryPressureError(rounded, self._in_use, capacity,
                                      reserved)
        buf = Buffer(handle=self._next_handle, size=size,
                     rounded_size=rounded, tag=tag)
        self._next_handle += 1
        self._live[buf.handle] = buf
        self._in_use += rounded
        self._peak = max(self._peak, self._in_use)
        if self._observer is not None:
            self._observer("alloc", buf, self._in_use)
        return buf

    def replay_transient(self, rounded_sizes, total_rounded: int) -> None:
        """Replay an alloc-everything-then-free-everything episode.

        The serving dispatch memo records the rounded buffer sizes of a
        batch's memory plan once, then replays them here on every memo
        hit instead of constructing/freeing real :class:`Buffer`
        objects.  Byte-exact with the real loop: same peak high-water
        mark, same error type and fields at the same buffer, same
        OOM-before-pressure check order, and the peak of a partially
        allocated prefix is charged before the error propagates (the
        real loop bumps the peak per successful alloc and the caller
        frees the prefix afterwards).  Net ``in_use`` is unchanged.

        Only valid when no observer is attached (observers see per-
        buffer events the replay skips); callers gate on that.
        """
        capacity = self.device.global_memory_bytes
        start = self._in_use
        reserved = self.reserved_bytes
        if start + total_rounded <= capacity - reserved:
            peak = start + total_rounded
            if peak > self._peak:
                self._peak = peak
            return
        in_use = start
        for rounded in rounded_sizes:
            if in_use + rounded > capacity:
                if in_use > self._peak:
                    self._peak = in_use
                raise DeviceOOMError(rounded, in_use, capacity)
            if reserved and in_use + rounded > capacity - reserved:
                if in_use > self._peak:
                    self._peak = in_use
                raise MemoryPressureError(rounded, in_use, capacity, reserved)
            in_use += rounded
        if in_use > self._peak:
            self._peak = in_use

    def free(self, buf: Buffer) -> None:
        """Release a live buffer; freeing twice is an error."""
        stored = self._live.pop(buf.handle, None)
        if stored is None:
            raise AllocationError(f"free of unknown or already-freed buffer {buf.handle}")
        self._in_use -= stored.rounded_size
        if self._observer is not None:
            self._observer("free", stored, self._in_use)

    def free_all(self) -> None:
        """Release every live buffer (end of benchmark iteration)."""
        for buf in list(self._live.values()):
            self.free(buf)

    def reset_peak(self) -> None:
        """Restart peak tracking from the current footprint."""
        self._peak = self._in_use

    # -- context-manager sugar ------------------------------------------------

    def scoped(self, size: int, tag: str = "") -> "_ScopedBuffer":
        """``with allocator.scoped(n):`` allocates for the block only."""
        return _ScopedBuffer(self, size, tag)


class _ScopedBuffer:
    def __init__(self, allocator: DeviceAllocator, size: int, tag: str):
        self._allocator = allocator
        self._size = size
        self._tag = tag
        self.buffer: Optional[Buffer] = None

    def __enter__(self) -> Buffer:
        self.buffer = self._allocator.alloc(self._size, self._tag)
        return self.buffer

    def __exit__(self, *exc) -> None:
        if self.buffer is not None:
            self._allocator.free(self.buffer)
            self.buffer = None
