"""CUDA occupancy calculation.

Occupancy — the ratio of resident warps to the SM's maximum — is the
paper's first profiling metric (section V-C-1).  It is limited by three
resources, exactly as the paper's summary states: *register usage,
shared memory usage and block size*.  This module implements the
compute-capability 3.5 allocation rules from NVIDIA's occupancy
calculator:

* registers are allocated per warp, rounded up to the device's
  allocation granularity;
* shared memory is allocated per block, rounded up to its granularity;
* an SM holds at most ``max_blocks_per_sm`` blocks and
  ``max_warps_per_sm`` warps.

The paper's Table II (registers/thread, shared bytes/block for each
implementation) feeds straight into this calculation and yields the
occupancy ranges Fig. 6 reports — e.g. cuda-convnet2's 116
registers/thread caps it at ~25 % theoretical occupancy, matching the
observed 14–22 %.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .device import DeviceSpec
from .memo import memoized


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one launch shape."""

    #: Resident blocks per SM.
    blocks_per_sm: int
    #: Resident warps per SM.
    warps_per_sm: int
    #: warps_per_sm / device.max_warps_per_sm, in (0, 1].
    theoretical: float
    #: Which resource capped the block count:
    #: 'blocks' | 'warps' | 'registers' | 'shared'.
    limiter: str

    def __post_init__(self) -> None:
        assert 0.0 <= self.theoretical <= 1.0


def _register_block_limit(device: DeviceSpec, regs_per_thread: int,
                          warps_per_block: int) -> int:
    """Blocks/SM permitted by the register file (warp-granular alloc)."""
    if regs_per_thread == 0:
        return device.max_blocks_per_sm
    regs_per_warp = regs_per_thread * device.warp_size
    # Round up to the allocation unit.
    regs_per_warp = math.ceil(regs_per_warp / device.register_alloc_unit) \
        * device.register_alloc_unit
    warps_limit = device.registers_per_sm // regs_per_warp
    return warps_limit // warps_per_block


def _shared_block_limit(device: DeviceSpec, shared_per_block: int) -> int:
    """Blocks/SM permitted by shared memory."""
    if shared_per_block == 0:
        return device.max_blocks_per_sm
    alloc = math.ceil(shared_per_block / device.shared_alloc_unit) \
        * device.shared_alloc_unit
    return device.shared_memory_per_sm // alloc


@memoized(maxsize=8192)
def occupancy(device: DeviceSpec, threads_per_block: int,
              regs_per_thread: int = 0, shared_per_block: int = 0) -> OccupancyResult:
    """Compute theoretical occupancy for a launch configuration.

    Raises ``ValueError`` for configurations that cannot launch at all
    (block too large, more registers per thread than addressable, more
    shared memory than a block may use).
    """
    if threads_per_block <= 0:
        raise ValueError(f"threads_per_block must be positive, got {threads_per_block}")
    if threads_per_block > device.max_threads_per_block:
        raise ValueError(
            f"block of {threads_per_block} threads exceeds device limit "
            f"{device.max_threads_per_block}"
        )
    if regs_per_thread < 0 or shared_per_block < 0:
        raise ValueError("resource usage must be non-negative")
    if regs_per_thread > device.max_registers_per_thread:
        raise ValueError(
            f"{regs_per_thread} registers/thread exceeds device limit "
            f"{device.max_registers_per_thread}"
        )
    if shared_per_block > device.max_shared_per_block:
        raise ValueError(
            f"{shared_per_block} B shared/block exceeds device limit "
            f"{device.max_shared_per_block}"
        )

    warps_per_block = math.ceil(threads_per_block / device.warp_size)

    limits = {
        "blocks": device.max_blocks_per_sm,
        "warps": device.max_warps_per_sm // warps_per_block,
        "registers": _register_block_limit(device, regs_per_thread, warps_per_block),
        "shared": _shared_block_limit(device, shared_per_block),
    }
    limiter = min(limits, key=lambda k: limits[k])
    blocks = limits[limiter]
    if blocks == 0:
        # Resources admit less than one whole block per SM; the kernel
        # still runs (one block at a time) in real hardware only if a
        # single block fits, which the guards above ensure for shared
        # memory; registers can still exclude it.
        raise ValueError(
            f"launch cannot fit one block per SM (limited by {limiter}): "
            f"threads={threads_per_block}, regs={regs_per_thread}, "
            f"shared={shared_per_block}"
        )
    warps = blocks * warps_per_block
    # Warps may exceed the SM warp cap when block-count is the limiter
    # only via rounding; clamp defensively.
    warps = min(warps, device.max_warps_per_sm)
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        theoretical=warps / device.max_warps_per_sm,
        limiter=limiter,
    )


def achieved_occupancy(device: DeviceSpec, theoretical: float,
                       grid_blocks: int, blocks_per_sm: int) -> float:
    """Estimate *achieved* occupancy from the theoretical bound.

    Real kernels achieve less than the theoretical occupancy because of
    launch tails (the final wave of blocks only partially fills the
    SMs) and scheduling jitter.  We model the tail exactly — the mean
    occupancy over all waves of the grid — and apply a small constant
    scheduling derate.
    """
    if grid_blocks <= 0:
        raise ValueError(f"grid_blocks must be positive, got {grid_blocks}")
    wave_capacity = blocks_per_sm * device.sm_count
    full_waves, tail = divmod(grid_blocks, wave_capacity)
    if full_waves == 0:
        mean_fill = tail / wave_capacity
    elif tail == 0:
        mean_fill = 1.0
    else:
        # Time-weighted: full waves run at 100 % fill, the tail wave at
        # tail/wave_capacity fill for roughly one wave duration.
        mean_fill = (full_waves + (tail / wave_capacity) ** 2) / (full_waves + tail / wave_capacity)
    scheduling_derate = 0.92  # empirical steady-state scheduler efficiency
    value = theoretical * mean_fill * scheduling_derate
    return max(min(value, 1.0), 1e-4)


def optimal_block_size(device: DeviceSpec, regs_per_thread: int = 0,
                       shared_per_block: int = 0,
                       candidates=(64, 128, 192, 256, 384, 512, 768, 1024)
                       ) -> int:
    """Block size maximising theoretical occupancy for a resource
    budget (ties break toward smaller blocks — finer-grained tails).

    The paper's section V-C-1 summary: "Occupancy is limited by three
    potential factors: register usage, shared memory usage and block
    size. It is important that GPU-based CNN implementations carefully
    balance these factors."  This helper is that balancing act as a
    function.
    """
    best_block, best_occ = None, -1.0
    for block in candidates:
        try:
            occ = occupancy(device, block, regs_per_thread,
                            shared_per_block).theoretical
        except ValueError:
            continue
        if occ > best_occ + 1e-12:
            best_block, best_occ = block, occ
    if best_block is None:
        raise ValueError(
            f"no candidate block size can launch with regs={regs_per_thread}, "
            f"shared={shared_per_block}"
        )
    return best_block
