"""Kernel descriptions consumed by the timing engine and profiler.

A :class:`KernelSpec` is the analytic-model analogue of one CUDA
kernel launch: how much work it does (FLOPs, bytes), how it is shaped
(grid/block), what per-thread resources it holds (registers, shared
memory — the paper's Table II), and how it touches memory (coalescing
and bank patterns).  The framework adapters in
:mod:`repro.frameworks` build lists of these — *kernel plans* — for
each convolution configuration, naming the kernels exactly as the
paper's Fig. 4 does (``sgemm``, ``im2col_gpu_kernel``,
``filterActs_YxX_color``, ``decimateInFrequency`` ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional, Sequence, Tuple

from .coalescing import WarpAccess, COALESCED_FLOAT
from .banks import SharedAccess
from .divergence import DivergenceProfile, UNIFORM
from .memo import cached_instance_hash


class KernelRole(Enum):
    """Functional grouping of kernels, matching how the paper's Fig. 4
    clusters "similar kernels who have the same functionalities"."""

    GEMM = "GEMM"
    IM2COL = "im2col"
    COL2IM = "col2im"
    FFT = "FFT"
    FFT_INVERSE = "FFT inverse"
    TRANSPOSE = "transpose"
    CGEMM = "CGEMM"
    DIRECT_CONV = "direct conv"
    POINTWISE = "pointwise"
    REDUCE = "reduce"
    DATA_PREP = "data prep"
    MEMCPY = "memcpy"
    OTHER = "other"


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry of one launch."""

    grid_blocks: int
    block_threads: int

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise ValueError(f"grid_blocks must be positive, got {self.grid_blocks}")
        if self.block_threads <= 0:
            raise ValueError(f"block_threads must be positive, got {self.block_threads}")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.block_threads

    @property
    def warps(self) -> int:
        return self.grid_blocks * math.ceil(self.block_threads / 32)


@dataclass(frozen=True)
class KernelSpec:
    """Analytic description of one kernel launch.

    Work is described by ``flops`` (floating-point operations retired)
    and the *requested* global traffic ``gmem_read_bytes`` /
    ``gmem_write_bytes``; the coalescing model inflates requested
    traffic into transactions.  ``compute_efficiency`` is the fraction
    of issue slots the kernel's instruction mix can use at full
    occupancy (e.g. a cuBLAS GEMM tile sustains ~0.6-0.85 of peak; a
    gather kernel much less) — it is *per-kernel instruction mix*, not
    a fudge factor, and comes from the calibration tables with
    provenance notes.
    """

    name: str
    role: KernelRole
    flops: float
    gmem_read_bytes: float
    gmem_write_bytes: float
    launch: LaunchConfig
    regs_per_thread: int = 32
    shared_per_block: int = 0
    compute_efficiency: float = 0.7
    load_pattern: WarpAccess = COALESCED_FLOAT
    store_pattern: WarpAccess = COALESCED_FLOAT
    shared_accesses: Tuple[SharedAccess, ...] = ()
    divergence: DivergenceProfile = UNIFORM
    #: Average non-FLOP instructions issued per FLOP instruction
    #: (address math, loads/stores, control) — feeds the IPC estimate.
    overhead_instr_ratio: float = 0.6
    #: Shared-memory bytes moved per global byte of useful traffic;
    #: only used to decide whether bank conflicts gate the kernel.
    shared_traffic_bytes: float = 0.0
    #: How many times this identical launch repeats (e.g. per-image
    #: im2col loops in Caffe launch once per batch element).
    repeats: int = 1
    #: Fraction of peak DRAM bandwidth the kernel sustains for timing
    #: purposes.  ``None`` derives it from the access patterns; set it
    #: explicitly for kernels whose poorly-coalesced *requests* are
    #: largely absorbed by the L1/texture cache (im2col-style gathers),
    #: where the nvprof efficiency metric is low but DRAM traffic is
    #: close to compulsory.
    timing_bandwidth_fraction: Optional[float] = None

    def __post_init__(self) -> None:
        if self.flops < 0 or self.gmem_read_bytes < 0 or self.gmem_write_bytes < 0:
            raise ValueError("work quantities must be non-negative")
        if self.flops == 0 and self.gmem_read_bytes == 0 and self.gmem_write_bytes == 0:
            raise ValueError(f"kernel {self.name!r} does no work")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError("compute_efficiency must be in (0,1]")
        if self.regs_per_thread < 0 or self.shared_per_block < 0:
            raise ValueError("resource usage must be non-negative")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.overhead_instr_ratio < 0:
            raise ValueError("overhead_instr_ratio must be >= 0")
        if self.timing_bandwidth_fraction is not None and not (
                0.0 < self.timing_bandwidth_fraction <= 1.0):
            raise ValueError("timing_bandwidth_fraction must be in (0,1]")

    @property
    def total_flops(self) -> float:
        return self.flops * self.repeats

    @property
    def total_bytes(self) -> float:
        return (self.gmem_read_bytes + self.gmem_write_bytes) * self.repeats

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per requested global byte (one launch)."""
        total = self.gmem_read_bytes + self.gmem_write_bytes
        return self.flops / total if total > 0 else math.inf

    def scaled(self, **changes) -> "KernelSpec":
        """Copy with fields replaced (kernel plans reuse templates)."""
        return replace(self, **changes)


# Specs key every memo lookup in the timing engine.  The dataclass
# hash walks all 17 fields; a handful of them (name, sizes, repeats)
# already discriminate real plans, and hash/eq consistency only needs
# equal specs to hash equal — rare collisions fall through to the full
# field-wise __eq__.  The value is then cached per instance.
def _spec_hash(self) -> int:
    return hash((self.name, self.flops, self.gmem_read_bytes,
                 self.gmem_write_bytes, self.repeats))


KernelSpec.__hash__ = _spec_hash
cached_instance_hash(KernelSpec)
cached_instance_hash(LaunchConfig)


def grid_for(items: int, per_block: int) -> int:
    """Blocks needed to cover ``items`` work items, ``per_block`` each."""
    if items <= 0:
        raise ValueError(f"items must be positive, got {items}")
    if per_block <= 0:
        raise ValueError(f"per_block must be positive, got {per_block}")
    return math.ceil(items / per_block)


def replay_cost_s(device) -> float:
    """Simulated cost of recovering one transiently-faulted launch.

    The ECC single-bit-error class of fault is recoverable: the driver
    scrubs the affected region and replays the launch.  The recovery
    therefore costs one ECC scrub/replay window
    (:attr:`~repro.gpusim.device.DeviceSpec.ecc_retry_cost_s`) plus the
    re-launch overhead.  The fault-injection plane charges this to the
    virtual clock for every injected transient fault.
    """
    return device.ecc_retry_cost_s + device.kernel_launch_overhead_s
