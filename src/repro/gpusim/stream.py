"""CUDA-stream-style timeline model.

A :class:`Timeline` holds several :class:`Stream` objects; operations
enqueued on different streams overlap, operations on one stream
serialise, and events let a stream wait on another — enough to model
the copy/compute overlap tricks the paper discusses (Caffe's data
prefetching thread, cuDNN's async workspace staging), without
simulating the CUDA driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class _Op:
    stream: str
    label: str
    start: float
    end: float


class Stream:
    """One in-order execution queue."""

    def __init__(self, timeline: "Timeline", name: str):
        self._timeline = timeline
        self.name = name
        self._front = 0.0  # completion time of the last enqueued op

    @property
    def front(self) -> float:
        """Time at which the next enqueued op may start."""
        return self._front

    def enqueue(self, duration: float, label: str = "",
                not_before: float = 0.0) -> "Event":
        """Append an operation of ``duration`` seconds; it starts when
        the stream is free and ``not_before`` has passed."""
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        start = max(self._front, not_before)
        end = start + duration
        self._front = end
        self._timeline._ops.append(_Op(self.name, label, start, end))
        return Event(end)

    def wait(self, event: "Event") -> None:
        """Make subsequent ops on this stream start no earlier than the
        event (cudaStreamWaitEvent)."""
        self._front = max(self._front, event.time)


@dataclass(frozen=True)
class Event:
    """Completion marker of an enqueued operation."""

    time: float


class Timeline:
    """A set of streams sharing one clock."""

    def __init__(self) -> None:
        self._streams: Dict[str, Stream] = {}
        self._ops: List[_Op] = []

    def stream(self, name: str) -> Stream:
        """Get or create the named stream."""
        if name not in self._streams:
            self._streams[name] = Stream(self, name)
        return self._streams[name]

    @property
    def makespan(self) -> float:
        """Completion time of the last operation on any stream."""
        return max((op.end for op in self._ops), default=0.0)

    def busy_time(self, stream: str) -> float:
        """Total busy duration of one stream."""
        return sum(op.end - op.start for op in self._ops if op.stream == stream)

    def ops(self) -> List[_Op]:
        return list(self._ops)
