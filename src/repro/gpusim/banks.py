"""Shared-memory bank-conflict model.

Shared memory on Kepler is divided into 32 banks of 4-byte words.
When several lanes of a warp access *different words in the same
bank*, the accesses serialise — an *n*-way bank conflict takes *n*
shared-memory cycles.  Accesses to the *same* word broadcast for free.

nvprof's ``shared_efficiency`` metric is the ratio of requested to
required shared throughput; with 8-byte (or wider) accesses in 64-bit
bank mode a warp can beat the nominal 100 % (the paper observes cuDNN
above 130 %), and heavy conflicts drive it far down (Theano-fft's
8–20 %, the bottleneck section V-C-3 analyses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .device import DeviceSpec
from .memo import cached_instance_hash, memoized


@dataclass(frozen=True)
class SharedAccess:
    """One warp-wide shared memory access pattern.

    ``stride_words`` is the distance between consecutive lanes'
    addresses in *elements* (units of ``word_bytes``): 1 = contiguous,
    0 = broadcast, larger = strided.  ``word_bytes`` is the access
    width per lane (4, 8 or 16; 8-byte-and-wider accesses use Kepler's
    64-bit bank mode).
    """

    stride_words: int = 1
    word_bytes: int = 4
    active_lanes: int = 32

    def __post_init__(self) -> None:
        if self.stride_words < 0:
            raise ValueError(f"stride_words must be >= 0, got {self.stride_words}")
        if self.word_bytes not in (4, 8, 16):
            raise ValueError(f"word_bytes must be 4/8/16, got {self.word_bytes}")
        if not (1 <= self.active_lanes <= 32):
            raise ValueError(f"active_lanes must be in [1,32], got {self.active_lanes}")


# Access patterns are shared table constants hashed on every memo
# lookup below; cache per instance.
cached_instance_hash(SharedAccess)


@memoized(maxsize=8192)
def conflict_degree(device: DeviceSpec, access: SharedAccess) -> int:
    """Maximum number of distinct words mapping to one bank.

    This is the serialisation factor of the access: 1 means
    conflict-free, *n* means the access replays *n* times.  Broadcasts
    (several lanes reading the *same* word) do not conflict.
    """
    banks = device.shared_banks
    # Bank granularity: 4 bytes nominally, 8 bytes in 64-bit mode
    # (selected automatically for wide accesses on Kepler).
    unit = 8 if access.word_bytes >= 8 else device.bank_width_bytes
    phases = max(1, access.word_bytes // unit)
    worst = 1
    for phase in range(phases):
        per_bank: dict = {}
        for lane in range(access.active_lanes):
            byte_addr = (lane * access.stride_words * access.word_bytes
                         + phase * unit)
            u = byte_addr // unit
            bank = u % banks
            per_bank.setdefault(bank, set()).add(u)
        worst = max(worst, max((len(w) for w in per_bank.values()), default=1))
    return worst


def conflict_free_stride(device: DeviceSpec, stride_words: int) -> bool:
    """True when a 4-byte access with this stride has no conflicts —
    i.e. the stride is odd (coprime with the 32 banks) or a broadcast."""
    if stride_words == 0:
        return True
    return math.gcd(stride_words, device.shared_banks) == 1


def shared_efficiency(device: DeviceSpec, accesses: Sequence[SharedAccess]) -> float:
    """Aggregate nvprof-style shared efficiency over a kernel's
    characteristic accesses.

    Each access contributes ``(requested bytes) / (cycles * bank
    throughput)``.  Wide conflict-free accesses exceed 1.0 (up to 2.0
    in 64-bit mode), reproducing cuDNN's >100 % readings.
    """
    if not accesses:
        return 1.0
    return _shared_efficiency(device, tuple(accesses))


@memoized(maxsize=8192)
def _shared_efficiency(device: DeviceSpec,
                       accesses: Sequence[SharedAccess]) -> float:
    total_requested = 0.0
    total_required = 0.0
    # nvprof normalises "required" throughput against the nominal
    # 32-bit bank width; in 64-bit bank mode a conflict-free wide
    # access moves 8 bytes/bank/cycle, which is how kernels built on
    # float2/float4 shared tiles (cuDNN) exceed 100 %.
    nominal_bytes_per_cycle = device.shared_banks * device.bank_width_bytes
    for acc in accesses:
        requested = acc.active_lanes * acc.word_bytes
        degree = conflict_degree(device, acc)
        cycles = degree * max(1, acc.word_bytes // 8)
        total_requested += requested
        total_required += cycles * nominal_bytes_per_cycle
    return total_requested / total_required


def padded_stride(stride_words: int) -> int:
    """The classic bank-conflict fix the paper's summary recommends:
    pad the leading dimension by one word to make the stride odd."""
    return stride_words + 1 if stride_words % 2 == 0 else stride_words
