"""CPU <-> GPU data-transfer model (PCIe).

Section V-D of the paper measures the share of total runtime each
implementation spends moving data across the PCIe bus and lists the
three standard mitigations its summary recommends: pinned host memory,
asynchronous (overlapped) transfers, and batching many small copies
into large ones.  All three are mechanically represented here:

* pinned vs pageable memory select different sustained bandwidths;
* each copy pays a fixed bus/driver latency, so many small transfers
  are slower than one large one;
* asynchronous copies are handed to a :class:`~repro.gpusim.stream.
  Timeline`, which overlaps them with compute and only charges the
  non-hidden remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from .device import DeviceSpec


class TransferKind(Enum):
    """Direction of a PCIe copy."""

    H2D = "host-to-device"
    D2H = "device-to-host"


@dataclass(frozen=True)
class TransferRecord:
    """One completed copy."""

    kind: TransferKind
    bytes: int
    pinned: bool
    async_: bool
    time_s: float


class TransferEngine:
    """Times PCIe copies and accumulates per-direction statistics."""

    def __init__(self, device: DeviceSpec):
        self.device = device
        self.records: List[TransferRecord] = []

    def copy_time(self, nbytes: int, pinned: bool = False,
                  chunks: int = 1) -> float:
        """Wall time of copying ``nbytes``, split into ``chunks``
        equal transfers (each paying the per-transfer latency)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if chunks <= 0:
            raise ValueError(f"chunks must be positive, got {chunks}")
        if nbytes == 0:
            return 0.0
        bw = (self.device.pcie_pinned_bandwidth if pinned
              else self.device.pcie_pageable_bandwidth)
        return chunks * self.device.pcie_latency_s + nbytes / bw

    def copy(self, kind: TransferKind, nbytes: int, pinned: bool = False,
             async_: bool = False, chunks: int = 1) -> TransferRecord:
        """Record a copy and return its record."""
        t = self.copy_time(nbytes, pinned=pinned, chunks=chunks)
        rec = TransferRecord(kind=kind, bytes=nbytes, pinned=pinned,
                             async_=async_, time_s=t)
        self.records.append(rec)
        return rec

    # -- statistics ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        return sum(r.bytes for r in self.records)

    @property
    def total_time(self) -> float:
        return sum(r.time_s for r in self.records)

    def synchronous_time(self) -> float:
        """Time of copies that block the compute stream."""
        return sum(r.time_s for r in self.records if not r.async_)

    def asynchronous_time(self) -> float:
        return sum(r.time_s for r in self.records if r.async_)

    def reset(self) -> None:
        self.records.clear()


def exposed_transfer_time(sync_time: float, async_time: float,
                          compute_time: float, overlap_efficiency: float = 0.95) -> float:
    """Transfer time that actually extends the iteration.

    Synchronous copies are fully exposed.  Asynchronous copies hide
    behind compute up to ``overlap_efficiency`` of the compute time
    (double buffering is never perfect: the first iteration's prologue
    and stream-synchronisation points leak a little).
    """
    if sync_time < 0 or async_time < 0 or compute_time < 0:
        raise ValueError("times must be non-negative")
    if not (0.0 <= overlap_efficiency <= 1.0):
        raise ValueError("overlap_efficiency must be in [0,1]")
    hidden = min(async_time, compute_time * overlap_efficiency)
    return sync_time + (async_time - hidden)
