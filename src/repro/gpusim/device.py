"""Device specifications.

:data:`K40C` reproduces the card described in section III-A of the
paper: 15 SMs x 192 CUDA cores at 745 MHz boost (4.29 TFLOP/s single
precision), 12 GB of GDDR5 at 288 GB/s, 64K 32-bit registers and 48 KB
of shared memory per SM.  The occupancy-relevant limits follow the CUDA
C Programming Guide for compute capability 3.5.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields

from .memo import cached_instance_hash


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a CUDA device for the analytic model."""

    name: str
    sm_count: int
    cores_per_sm: int
    clock_hz: float
    #: FLOPs retired per core per cycle (FMA counts as 2).
    flops_per_core_cycle: int
    global_memory_bytes: int
    #: Peak global-memory bandwidth, bytes/second.
    memory_bandwidth: float
    #: 32-bit registers per SM.
    registers_per_sm: int
    #: Register allocation granularity (per warp), in registers.
    register_alloc_unit: int
    #: Maximum registers addressable by one thread.
    max_registers_per_thread: int
    shared_memory_per_sm: int
    #: Shared-memory allocation granularity per block, bytes.
    shared_alloc_unit: int
    max_shared_per_block: int
    max_threads_per_sm: int
    max_threads_per_block: int
    max_blocks_per_sm: int
    warp_size: int
    #: Number of shared-memory banks and bank width in bytes.
    shared_banks: int
    bank_width_bytes: int
    #: Size of one global-memory transaction (L1 cache line), bytes.
    transaction_bytes: int
    #: Fixed host-side cost of launching one kernel, seconds.
    kernel_launch_overhead_s: float
    #: PCIe bandwidths (bytes/s) for pinned and pageable host memory,
    #: and per-transfer latency (seconds).  Gen-3 x16 figures.
    pcie_pinned_bandwidth: float = 11.5e9
    pcie_pageable_bandwidth: float = 6.0e9
    pcie_latency_s: float = 10e-6
    #: Maximum dual-issue rate: instructions per cycle per SM the
    #: schedulers can sustain (4 warp schedulers x 2 dispatch on GK110).
    max_ipc_per_sm: float = 8.0
    #: Simulated cost of recovering one transiently-faulted launch:
    #: ECC scrub + driver-level replay of the kernel.  Charged by the
    #: fault-injection plane on top of the launch overhead.
    ecc_retry_cost_s: float = 500e-6

    # -- derived quantities -------------------------------------------------

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def cuda_cores(self) -> int:
        return self.sm_count * self.cores_per_sm

    @property
    def peak_flops(self) -> float:
        """Peak single-precision FLOP/s."""
        return self.cuda_cores * self.clock_hz * self.flops_per_core_cycle

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.sm_count} SMs x {self.cores_per_sm} cores @ "
            f"{self.clock_hz / 1e6:.0f} MHz = {self.peak_flops / 1e12:.2f} TFLOP/s, "
            f"{self.global_memory_bytes / 2**30:.0f} GiB @ "
            f"{self.memory_bandwidth / 1e9:.0f} GB/s"
        )


# A handful of device instances are hashed on every memo-cache lookup
# in the analytic layer; cache the 20-field hash per instance.
cached_instance_hash(DeviceSpec)


def spec_digest(device: "DeviceSpec") -> str:
    """Short content digest of every field of a device spec.

    Two specs that model different hardware digest differently even
    when they share a display name, which is what lets the evaluation
    caches key on *device identity* rather than the label (see
    :func:`repro.core.evalcache.device_key`).  The digest is stable
    across processes (sha256 over the canonical ``field=value``
    serialization, not :func:`hash`) and cached per instance — every
    field is immutable, so computing it once is sound.
    """
    try:
        return device._cached_digest
    except AttributeError:
        blob = ";".join(f"{f.name}={getattr(device, f.name)!r}"
                        for f in fields(device))
        digest = hashlib.sha256(blob.encode()).hexdigest()[:12]
        object.__setattr__(device, "_cached_digest", digest)
        return digest


def _variant(base: "DeviceSpec", **changes) -> "DeviceSpec":
    from dataclasses import replace
    return replace(base, **changes)


#: The Tesla K40c of section III-A (GK110B, compute capability 3.5).
K40C = DeviceSpec(
    name="Tesla K40c",
    sm_count=15,
    cores_per_sm=192,
    clock_hz=745e6,
    flops_per_core_cycle=2,
    global_memory_bytes=12 * 2**30,
    memory_bandwidth=288e9,
    registers_per_sm=65536,
    register_alloc_unit=256,
    max_registers_per_thread=255,
    shared_memory_per_sm=48 * 1024,
    shared_alloc_unit=256,
    max_shared_per_block=48 * 1024,
    max_threads_per_sm=2048,
    max_threads_per_block=1024,
    max_blocks_per_sm=16,
    warp_size=32,
    shared_banks=32,
    bank_width_bytes=4,
    transaction_bytes=128,
    kernel_launch_overhead_s=5e-6,
)


#: Tesla K20X — the K40c's smaller GK110 sibling (14 SMs @ 732 MHz,
#: 6 GB, 250 GB/s).  Useful for "what if the paper had run on the
#: previous card" sensitivity studies.
K20X = _variant(
    K40C,
    name="Tesla K20X",
    sm_count=14,
    clock_hz=732e6,
    global_memory_bytes=6 * 2**30,
    memory_bandwidth=250e9,
)

#: GeForce GTX TITAN X (Maxwell GM200): 24 SMs x 128 cores @ 1.0 GHz,
#: 12 GB, 336 GB/s.  Maxwell keeps 64K registers per SM but gives
#: blocks up to 48 KB shared out of a 96 KB array and schedules 32
#: blocks per SM.
TITAN_X = _variant(
    K40C,
    name="GTX TITAN X (Maxwell)",
    sm_count=24,
    cores_per_sm=128,
    clock_hz=1000e6,
    global_memory_bytes=12 * 2**30,
    memory_bandwidth=336e9,
    shared_memory_per_sm=96 * 1024,
    max_blocks_per_sm=32,
)

#: Tesla M40 — the Maxwell datacentre part (24 SMs @ 948 MHz, 288 GB/s).
M40 = _variant(
    TITAN_X,
    name="Tesla M40",
    clock_hz=948e6,
    memory_bandwidth=288e9,
)

#: All modelled devices by name.
DEVICES = {d.name: d for d in (K40C, K20X, TITAN_X, M40)}
