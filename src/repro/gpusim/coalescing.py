"""Global-memory access coalescing model.

nvprof's ``gld_efficiency`` / ``gst_efficiency`` metrics are the ratio
of *requested* to *required* global memory throughput: a warp of 32
threads requests some bytes, and the memory system must move whole
128-byte transactions to satisfy it.  Perfectly coalesced, aligned
accesses need exactly ``requested / 128`` transactions (100 %);
strided or misaligned patterns touch more segments and the efficiency
drops — the replay behaviour section V-C-2 of the paper attributes the
low efficiencies of Caffe/Torch-cunn/Theano-CorrMM to.

The model below computes, for a warp-wide access described by an
element size, an element stride and an alignment offset, how many
128-byte transactions are touched, exactly as the hardware's address
coalescer does for the L1 path on Kepler.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .memo import cached_instance_hash, memoized


@dataclass(frozen=True)
class WarpAccess:
    """One warp-wide global memory access pattern.

    Attributes
    ----------
    word_bytes:
        Bytes accessed by each lane (4 for float, 8 for float2/double,
        16 for float4 vectorized loads).
    stride_words:
        Distance between consecutive lanes' addresses, in units of
        ``word_bytes``.  1 = fully coalesced, 0 = broadcast (all lanes
        read the same word), larger = strided.
    offset_bytes:
        Misalignment of lane 0's address relative to a transaction
        boundary.
    active_lanes:
        Number of lanes actually performing the access (predication /
        divergence reduces this).
    """

    word_bytes: int = 4
    stride_words: int = 1
    offset_bytes: int = 0
    active_lanes: int = 32

    def __post_init__(self) -> None:
        if self.word_bytes not in (1, 2, 4, 8, 16):
            raise ValueError(f"word_bytes must be 1/2/4/8/16, got {self.word_bytes}")
        if self.stride_words < 0:
            raise ValueError(f"stride_words must be >= 0, got {self.stride_words}")
        if self.offset_bytes < 0:
            raise ValueError(f"offset_bytes must be >= 0, got {self.offset_bytes}")
        if not (1 <= self.active_lanes <= 32):
            raise ValueError(f"active_lanes must be in [1,32], got {self.active_lanes}")


# Calibration tables share a few WarpAccess constants across every
# kernel spec; their hash is consulted on each memo lookup below.
cached_instance_hash(WarpAccess)


@memoized(maxsize=8192)
def transactions_per_access(device: DeviceSpec, access: WarpAccess) -> int:
    """Number of ``device.transaction_bytes`` segments one warp access
    touches."""
    seg = device.transaction_bytes
    segments = set()
    for lane in range(access.active_lanes):
        addr = access.offset_bytes + lane * access.stride_words * access.word_bytes
        first = addr // seg
        last = (addr + access.word_bytes - 1) // seg
        segments.update(range(first, last + 1))
    return len(segments)


@memoized(maxsize=8192)
def access_efficiency(device: DeviceSpec, access: WarpAccess) -> float:
    """nvprof-style efficiency: requested bytes / transferred bytes.

    Returns a value in (0, 1].  A broadcast (stride 0) counts the
    single requested word against one transaction, so it is *low*
    efficiency in nvprof terms even though the hardware handles it
    cheaply — this matches how nvprof reports such kernels.
    """
    requested = access.active_lanes * access.word_bytes
    if access.stride_words == 0:
        requested = access.word_bytes
    transferred = transactions_per_access(device, access) * device.transaction_bytes
    return min(requested / transferred, 1.0)


def effective_bandwidth_fraction(device: DeviceSpec, access: WarpAccess) -> float:
    """Fraction of peak DRAM bandwidth usable under this pattern.

    Unlike :func:`access_efficiency` (an accounting metric), this is
    the *timing* impact: the kernel must move ``1 / efficiency`` times
    the requested bytes.  A floor keeps fully random patterns from
    collapsing to zero (the L2 still short-circuits some traffic).
    """
    eff = access_efficiency(device, access)
    return max(eff, 0.03125)


# -- common named patterns -------------------------------------------------

#: Fully coalesced float loads (cuBLAS-style tiled GEMM body).
COALESCED_FLOAT = WarpAccess(word_bytes=4, stride_words=1)

#: Vectorized float4 loads (cuDNN, fbfft inner loops).
COALESCED_FLOAT4 = WarpAccess(word_bytes=16, stride_words=1)

#: im2col gather: lanes walk a row of the input but successive lanes
#: read elements ``stride`` apart in the source image.
def strided_float(stride_words: int, offset_bytes: int = 0) -> WarpAccess:
    """Strided 4-byte access with the given element stride."""
    return WarpAccess(word_bytes=4, stride_words=stride_words, offset_bytes=offset_bytes)
