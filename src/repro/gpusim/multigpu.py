"""Multi-GPU data-parallel scaling model.

The paper notes that most of the benchmarked frameworks "support one
or multiple GPUs" but evaluates a single K40c.  This extension models
the obvious next question — how the measured single-GPU iteration
times scale under synchronous data parallelism — using the same
first-order machinery as the rest of the simulator:

* each of ``n`` GPUs processes ``batch / n`` images (strong scaling)
  or the full per-GPU batch (weak scaling);
* after the backward pass, weight gradients are all-reduced.  On a
  2016-era PCIe box without NVLink/NCCL-rings this is modelled as a
  ring all-reduce over the PCIe links: ``2 * (n-1)/n * bytes`` moved
  per GPU at the (shared) host-bridge bandwidth;
* cuda-convnet2's "one weird trick" observation falls out naturally:
  convolutional layers (few parameters, much compute) scale well,
  FC-heavy models are gradient-bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..errors import ShapeError
from .device import DeviceSpec, K40C


@dataclass(frozen=True)
class ScalingPoint:
    """Predicted behaviour at one GPU count."""

    gpus: int
    compute_time_s: float
    allreduce_time_s: float
    iteration_time_s: float
    speedup: float
    efficiency: float


def ring_allreduce_time(param_bytes: int, gpus: int,
                        link_bandwidth: float,
                        latency_s: float = 10e-6,
                        steps_factor: int = 2) -> float:
    """Time of one ring all-reduce of ``param_bytes`` per GPU.

    Each GPU sends ``(gpus - 1) / gpus * param_bytes`` in each of the
    reduce-scatter and all-gather phases (``steps_factor = 2``), at
    ``link_bandwidth`` bytes/s, paying a per-step latency.
    """
    if param_bytes < 0:
        raise ShapeError(f"param_bytes must be non-negative, got {param_bytes}")
    if gpus <= 0:
        raise ShapeError(f"gpus must be positive, got {gpus}")
    if gpus == 1 or param_bytes == 0:
        return 0.0
    per_phase = (gpus - 1) / gpus * param_bytes
    steps = steps_factor * (gpus - 1)
    return steps_factor * per_phase / link_bandwidth + steps * latency_s


def strong_scaling(single_gpu_time_s: float, param_bytes: int, gpus: int,
                   device: DeviceSpec = K40C,
                   parallel_fraction: float = 0.98) -> ScalingPoint:
    """Fixed global batch split across ``gpus`` devices.

    ``parallel_fraction`` is the share of the single-GPU iteration that
    parallelises over images (launch overheads and small kernels do
    not — an Amdahl term).
    """
    if single_gpu_time_s <= 0:
        raise ShapeError("single_gpu_time_s must be positive")
    if not (0.0 < parallel_fraction <= 1.0):
        raise ShapeError("parallel_fraction must be in (0,1]")
    if gpus <= 0:
        raise ShapeError(f"gpus must be positive, got {gpus}")
    serial = single_gpu_time_s * (1.0 - parallel_fraction)
    compute = serial + single_gpu_time_s * parallel_fraction / gpus
    comm = ring_allreduce_time(param_bytes, gpus,
                               device.pcie_pinned_bandwidth)
    total = compute + comm
    speedup = single_gpu_time_s / total
    return ScalingPoint(gpus=gpus, compute_time_s=compute,
                        allreduce_time_s=comm, iteration_time_s=total,
                        speedup=speedup, efficiency=speedup / gpus)


def weak_scaling(single_gpu_time_s: float, param_bytes: int, gpus: int,
                 device: DeviceSpec = K40C) -> ScalingPoint:
    """Per-GPU batch held constant; the global batch grows with
    ``gpus``.  Throughput speedup = gpus / (1 + comm/compute)."""
    if single_gpu_time_s <= 0:
        raise ShapeError("single_gpu_time_s must be positive")
    if gpus <= 0:
        raise ShapeError(f"gpus must be positive, got {gpus}")
    comm = ring_allreduce_time(param_bytes, gpus,
                               device.pcie_pinned_bandwidth)
    total = single_gpu_time_s + comm
    speedup = gpus * single_gpu_time_s / total
    return ScalingPoint(gpus=gpus, compute_time_s=single_gpu_time_s,
                        allreduce_time_s=comm, iteration_time_s=total,
                        speedup=speedup, efficiency=speedup / gpus)
