"""Roofline analysis of kernel executions.

The paper's section V-C repeatedly reasons in roofline terms —
"whether the problem can be computed in a high degree of parallel",
memory- vs compute-bound kernels, the efficiency of exploiting "the
computing power of GPUs".  This module makes that analysis a
first-class artifact: given profiled kernel timings it computes each
kernel's arithmetic intensity, its attained performance, its position
relative to the device's roofline (the memory-bandwidth slope and the
peak-FLOP ceiling), and aggregate utilisation numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .device import DeviceSpec, K40C
from .timing import KernelTiming


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position in the roofline plane."""

    name: str
    arithmetic_intensity: float   # FLOPs per DRAM byte
    attained_flops: float         # FLOP/s achieved
    roof_flops: float             # ceiling at this intensity
    bound: str                    # 'memory' or 'compute' side of ridge

    @property
    def utilisation(self) -> float:
        """Fraction of the roofline ceiling actually attained."""
        return self.attained_flops / self.roof_flops if self.roof_flops else 0.0


def ridge_point(device: DeviceSpec) -> float:
    """Arithmetic intensity at which the device turns compute-bound:
    peak FLOPs / peak bandwidth (FLOPs per byte)."""
    return device.peak_flops / device.memory_bandwidth


def roofline_ceiling(device: DeviceSpec, intensity: float) -> float:
    """The roofline: min(peak, intensity * bandwidth)."""
    if intensity < 0:
        raise ValueError(f"intensity must be non-negative, got {intensity}")
    return min(device.peak_flops, intensity * device.memory_bandwidth)


def analyse(device: DeviceSpec, timings: Sequence[KernelTiming]) -> List[RooflinePoint]:
    """Place every profiled kernel on the device's roofline."""
    points: List[RooflinePoint] = []
    for t in timings:
        spec = t.spec
        total_bytes = spec.total_bytes
        total_flops = spec.total_flops
        if total_flops <= 0 and total_bytes <= 0:
            continue
        intensity = (total_flops / total_bytes) if total_bytes > 0 else float("inf")
        attained = total_flops / t.time_s if total_flops > 0 else 0.0
        roof = (device.peak_flops if total_bytes == 0
                else roofline_ceiling(device, min(intensity, 1e9)))
        side = "compute" if intensity >= ridge_point(device) else "memory"
        points.append(RooflinePoint(
            name=spec.name,
            arithmetic_intensity=intensity,
            attained_flops=attained,
            roof_flops=roof,
            bound=side,
        ))
    return points


@dataclass(frozen=True)
class UtilisationSummary:
    """Aggregate device-exploitation numbers for a kernel set."""

    total_time_s: float
    total_flops: float
    total_bytes: float
    flops_utilisation: float      # of peak FLOPs, time-averaged
    bandwidth_utilisation: float  # of peak bandwidth, time-averaged
    compute_bound_time_fraction: float


def summarise(device: DeviceSpec, timings: Sequence[KernelTiming]) -> UtilisationSummary:
    """How well did this kernel set exploit the device overall?"""
    if not timings:
        raise ValueError("cannot summarise an empty timing list")
    total_time = sum(t.time_s for t in timings)
    total_flops = sum(t.spec.total_flops for t in timings)
    total_bytes = sum(t.spec.total_bytes for t in timings)
    compute_time = sum(t.time_s for t in timings if t.bound == "compute")
    return UtilisationSummary(
        total_time_s=total_time,
        total_flops=total_flops,
        total_bytes=total_bytes,
        flops_utilisation=total_flops / (total_time * device.peak_flops),
        bandwidth_utilisation=total_bytes / (total_time * device.memory_bandwidth),
        compute_bound_time_fraction=compute_time / total_time,
    )


def render(device: DeviceSpec, points: Sequence[RooflinePoint]) -> str:
    """ASCII roofline report."""
    lines = [
        f"roofline of {device.name}: peak {device.peak_flops / 1e12:.2f} "
        f"TFLOP/s, {device.memory_bandwidth / 1e9:.0f} GB/s, ridge at "
        f"{ridge_point(device):.1f} FLOP/byte",
    ]
    for p in sorted(points, key=lambda p: -p.attained_flops):
        ai = ("inf" if p.arithmetic_intensity == float("inf")
              else f"{p.arithmetic_intensity:8.2f}")
        lines.append(
            f"  {p.name:32s} AI={ai} FLOP/B  "
            f"{p.attained_flops / 1e9:9.1f} GFLOP/s "
            f"({p.utilisation * 100:5.1f} % of its roof, {p.bound}-side)"
        )
    return "\n".join(lines)
