"""Chrome-trace export of profiler sessions.

nvprof could export timelines for the NVIDIA Visual Profiler; the
closest modern, tool-agnostic equivalent is the Chrome trace-event
JSON format (``chrome://tracing`` / Perfetto).  This module serialises
a :class:`~repro.gpusim.profiler.Profiler` session — kernels laid out
back-to-back on a GPU row, transfers on a copy-engine row — so the
simulated executions can be inspected with standard tooling.

The documents are Perfetto-valid: process/thread metadata rows name
the GPU rows (shared with :mod:`repro.obs.export`, so a session trace
and a unified serving trace label the ``gpusim`` process identically)
and per-row timestamps are strictly monotonic.  For *cross-layer*
timelines — serving spans and kernel leaves in one file — use
:func:`repro.obs.export.write_chrome_trace`, which supersedes this
module for traced runs; this one remains the zero-setup exporter for
a bare profiler session.
"""

from __future__ import annotations

import json
from typing import List, Optional

from ..obs.export import ensure_monotonic, metadata_events
from .profiler import Profiler
from .stream import Timeline

#: Trace-event categories.
_CAT_KERNEL = "kernel"
_CAT_COPY = "memcpy"

#: The gpusim process/thread rows, matching
#: :data:`repro.obs.export._ROWS` ("gpusim" is pid 2 there too).
_PID = 2
_TID_COMPUTE = 1
_TID_COPY = 2
_GPU_ROWS = {_PID: ("gpusim", {_TID_COMPUTE: "compute",
                               _TID_COPY: "copy engine"})}


def trace_events(profiler: Profiler) -> List[dict]:
    """Build the trace-event list for one profiled session.

    Kernels are serialised in launch order on the compute row (they
    execute back-to-back on one stream, as in the benchmarked
    frameworks); transfers go on the copy row, async copies overlapped
    from time zero, synchronous ones appended after the kernels they
    block.  Timestamps are strictly monotonic per row (zero-duration
    launches are nudged forward a nanosecond rather than colliding,
    which Perfetto's importer rejects).
    """
    events: List[dict] = []
    t = 0.0
    for e in profiler.executions:
        timing = e.timing
        events.append({
            "name": e.name,
            "cat": _CAT_KERNEL,
            "ph": "X",
            "pid": _PID,
            "tid": _TID_COMPUTE,
            "ts": t * 1e6,                      # microseconds
            "dur": timing.time_s * 1e6,
            "args": {
                "bound": timing.bound,
                "achieved_occupancy": round(timing.achieved_occupancy, 4),
                "ipc": round(timing.ipc, 3),
                "gld_efficiency": round(timing.gld_efficiency, 4),
                "shared_efficiency": round(timing.shared_efficiency, 4),
                "flops": timing.spec.total_flops,
                "repeats": timing.spec.repeats,
            },
        })
        t += timing.time_s
    kernel_end = t

    async_t = 0.0
    sync_t = kernel_end
    for rec in profiler.transfers.records:
        if rec.async_:
            start, async_t = async_t, async_t + rec.time_s
        else:
            start, sync_t = sync_t, sync_t + rec.time_s
        events.append({
            "name": rec.kind.value,
            "cat": _CAT_COPY,
            "ph": "X",
            "pid": _PID,
            "tid": _TID_COPY,
            "ts": start * 1e6,
            "dur": rec.time_s * 1e6,
            "args": {"bytes": rec.bytes, "pinned": rec.pinned,
                     "async": rec.async_},
        })
    return ensure_monotonic(events)


def to_chrome_trace(profiler: Profiler, path: Optional[str] = None) -> str:
    """Serialise a session to Chrome trace JSON; optionally write it.

    Returns the JSON string either way.
    """
    doc = {
        "traceEvents": metadata_events(_GPU_ROWS) + trace_events(profiler),
        "displayTimeUnit": "ms",
        "otherData": {
            "device": profiler.device.name,
            "kernels": len(profiler.executions),
            "gpu_time_s": profiler.gpu_time(),
        },
    }
    text = json.dumps(doc, indent=1, sort_keys=True)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def timeline_events(timeline: Timeline) -> List[dict]:
    """Trace events for a stream :class:`Timeline` (copy/compute
    overlap experiments)."""
    rows = {name: i + 1 for i, name in enumerate(sorted(
        {op.stream for op in timeline.ops()}))}
    return [{
        "name": op.label or op.stream,
        "cat": "stream",
        "ph": "X",
        "pid": 0,
        "tid": rows[op.stream],
        "ts": op.start * 1e6,
        "dur": (op.end - op.start) * 1e6,
    } for op in timeline.ops()]
