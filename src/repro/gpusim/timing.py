"""Roofline timing engine.

Turns a :class:`~repro.gpusim.kernels.KernelSpec` into a runtime and
the nvprof metric set of paper section V-C.  The model is first-order
mechanistic:

* the kernel's sustained compute rate is ``peak * compute_efficiency *
  utilisation``, where utilisation saturates with the product of
  resident warps (from the occupancy calculator) and per-thread ILP
  (proxied by register usage — this is why cuda-convnet2 performs well
  at 14–22 % occupancy, the "higher occupancy does not mean better
  performance" observation of section V-C-1);
* the memory rate is peak DRAM bandwidth derated by the coalescing
  model (transactions vs requested bytes);
* shared-memory traffic is serialised by the bank-conflict degree;
* the kernel takes the maximum of the three phase times (they overlap
  on real hardware) plus a fixed launch overhead;
* divergent control flow inflates issued instructions
  (:func:`~repro.gpusim.divergence.divergence_slowdown`).

IPC is then *derived* from issued warp-instructions over elapsed
cycles, so compute-bound, well-coalesced kernels show high IPC and
memory-bound ones low IPC, as in Fig. 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .banks import conflict_degree, shared_efficiency
from .coalescing import access_efficiency, effective_bandwidth_fraction
from .device import DeviceSpec
from .divergence import divergence_slowdown, warp_execution_efficiency
from .kernels import KernelSpec
from .memo import memoized
from .occupancy import achieved_occupancy, occupancy


class SimClock:
    """Deterministic virtual clock for simulated sessions.

    The serving subsystem (:mod:`repro.serve`) advances this clock by
    the simulated kernel/transfer times produced here, so a whole
    traffic run is reproducible to the bit from its seed — no wall
    time is ever read.  Time only moves forward.
    """

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError(f"start_s must be non-negative, got {start_s}")
        self._now = float(start_s)
        self._observer = None

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def set_observer(self, fn) -> None:
        """Attach (or with ``None`` detach) a time observer.

        ``fn(old_s, new_s)`` fires after every advance that actually
        moves the clock.  The fault-injection plane uses this to
        trigger events scheduled at absolute simulated times (e.g.
        plan-cache corruption) without the scheduler polling.
        """
        self._observer = fn

    def advance(self, dt_s: float) -> float:
        """Move forward by ``dt_s`` seconds; returns the new time."""
        if dt_s < 0:
            raise ValueError(f"cannot advance by negative time {dt_s}")
        old = self._now
        self._now += dt_s
        if self._observer is not None and self._now > old:
            self._observer(old, self._now)
        return self._now

    def advance_to(self, t_s: float) -> float:
        """Move forward to absolute time ``t_s`` (no-op if already
        past it — the clock never rewinds)."""
        old = self._now
        self._now = max(self._now, float(t_s))
        if self._observer is not None and self._now > old:
            self._observer(old, self._now)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(t={self._now:.6f}s)"


#: Resident-warp x ILP product at which the SM pipelines saturate.
#: GK110 needs ~30 independent instruction streams to cover its
#: arithmetic latency (9-11 cycles) across 4 schedulers.
_SATURATION_PARALLELISM = 30.0

#: Extra parallelism demand for covering DRAM latency, relative to
#: arithmetic latency.
_MEMORY_LATENCY_FACTOR = 1.6


@dataclass(frozen=True)
class KernelTiming:
    """Runtime and metrics of one kernel launch (all launches if the
    spec repeats)."""

    spec: KernelSpec
    time_s: float
    compute_time_s: float
    memory_time_s: float
    shared_time_s: float
    bound: str  # 'compute' | 'memory' | 'shared' | 'latency'
    theoretical_occupancy: float
    achieved_occupancy: float
    warp_execution_efficiency: float
    gld_efficiency: float
    gst_efficiency: float
    shared_efficiency: float
    ipc: float
    #: nvprof-style events.
    shared_load_bank_conflicts: int
    shared_store_bank_conflicts: int

    def __post_init__(self) -> None:
        assert self.time_s > 0


def _utilisation(warps_resident: float, regs_per_thread: int,
                 demand: float) -> float:
    """Fraction of peak rate sustainable with this much parallelism.

    ILP grows with register usage (more registers → deeper unrolled
    independent chains), clamped to [1, 4].
    """
    ilp = min(max(regs_per_thread / 32.0, 1.0), 4.0)
    parallelism = warps_resident * ilp
    return min(1.0, parallelism / demand)


@memoized(maxsize=131072)
def time_kernel(device: DeviceSpec, spec: KernelSpec) -> KernelTiming:
    """Time one kernel spec on ``device`` and derive its metrics.

    Pure in ``(device, spec)`` — both frozen dataclasses — so results
    are memoized (see :mod:`repro.gpusim.memo`): identical launches
    repeated across sweep points, figure pipelines and serving batches
    cost one dictionary lookup after the first evaluation.
    """
    occ = occupancy(device, spec.launch.block_threads,
                    spec.regs_per_thread, spec.shared_per_block)
    ach = achieved_occupancy(device, occ.theoretical,
                             spec.launch.grid_blocks, occ.blocks_per_sm)
    warps_resident = ach * device.max_warps_per_sm

    wee = warp_execution_efficiency(spec.divergence, device.warp_size)
    div_slow = divergence_slowdown(spec.divergence)

    # --- compute phase ----------------------------------------------------
    compute_util = _utilisation(warps_resident, spec.regs_per_thread,
                                _SATURATION_PARALLELISM)
    sustained_flops = (device.peak_flops * spec.compute_efficiency
                       * compute_util * wee)
    compute_t = spec.flops * div_slow / sustained_flops if spec.flops else 0.0

    # --- global memory phase ----------------------------------------------
    mem_util = _utilisation(warps_resident, spec.regs_per_thread,
                            _SATURATION_PARALLELISM * _MEMORY_LATENCY_FACTOR)
    if spec.timing_bandwidth_fraction is not None:
        read_frac = write_frac = spec.timing_bandwidth_fraction
    else:
        read_frac = effective_bandwidth_fraction(device, spec.load_pattern)
        write_frac = effective_bandwidth_fraction(device, spec.store_pattern)
    read_bw = device.memory_bandwidth * read_frac * mem_util
    write_bw = device.memory_bandwidth * write_frac * mem_util
    mem_t = 0.0
    if spec.gmem_read_bytes:
        mem_t += spec.gmem_read_bytes / read_bw
    if spec.gmem_write_bytes:
        mem_t += spec.gmem_write_bytes / write_bw

    # --- shared memory phase ----------------------------------------------
    shared_t = 0.0
    smem_eff = shared_efficiency(device, spec.shared_accesses)
    conflicted = spec.shared_accesses and spec.shared_traffic_bytes
    degree = max(conflict_degree(device, a)
                 for a in spec.shared_accesses) if conflicted else 1
    if conflicted:
        smem_peak = (device.sm_count * device.shared_banks
                     * device.bank_width_bytes * device.clock_hz * 2.0)  # 64-bit mode
        shared_t = spec.shared_traffic_bytes * degree / (smem_peak * max(ach, 0.05) * 4)

    body = max(compute_t, mem_t, shared_t)
    if body == compute_t:
        bound = "compute"
    elif body == mem_t:
        bound = "memory"
    else:
        bound = "shared"
    time_one = body + device.kernel_launch_overhead_s
    total = time_one * spec.repeats

    # --- derived metrics ----------------------------------------------------
    gld = access_efficiency(device, spec.load_pattern) if spec.gmem_read_bytes else 0.0
    gst = access_efficiency(device, spec.store_pattern) if spec.gmem_write_bytes else 0.0

    # Issued warp-instructions: FLOP instructions (FMA = 2 FLOPs per
    # lane) plus the overhead mix, inflated by divergence replay.
    flop_warp_instr = spec.flops / (device.warp_size * 2.0)
    mem_warp_instr = (spec.gmem_read_bytes + spec.gmem_write_bytes) / (
        device.warp_size * 4.0)
    warp_instr = (flop_warp_instr * (1.0 + spec.overhead_instr_ratio)
                  + mem_warp_instr) * div_slow
    cycles = max(time_one - device.kernel_launch_overhead_s, 1e-12) * device.clock_hz
    ipc = warp_instr / (cycles * device.sm_count)
    ipc = min(ipc, device.max_ipc_per_sm)

    # Bank-conflict events: replays beyond the first access, counted in
    # 128-byte warp accesses of shared traffic.
    conflicts = 0
    if conflicted:
        accesses = int(spec.shared_traffic_bytes / 128.0)
        conflicts = accesses * (degree - 1)
    load_conf = conflicts // 2
    store_conf = conflicts - load_conf

    return KernelTiming(
        spec=spec,
        time_s=total,
        compute_time_s=compute_t,
        memory_time_s=mem_t,
        shared_time_s=shared_t,
        bound=bound,
        theoretical_occupancy=occ.theoretical,
        achieved_occupancy=ach,
        warp_execution_efficiency=wee,
        gld_efficiency=gld,
        gst_efficiency=gst,
        shared_efficiency=smem_eff,
        ipc=ipc,
        shared_load_bank_conflicts=load_conf,
        shared_store_bank_conflicts=store_conf,
    )
