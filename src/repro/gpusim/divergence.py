"""Warp-divergence model → warp execution efficiency (WEE).

nvprof defines WEE as the ratio of the average number of active
threads per warp to the warp size.  Two effects reduce it:

* **branch divergence** — lanes of one warp take different control
  paths and execute serially with the others masked off (the cause of
  Theano-fft's 66–81 % WEE in Fig. 6);
* **ragged tails** — the problem size is not a multiple of the warp
  size, so boundary warps run partially full.

Both are modelled analytically from a kernel's divergence description.
"""

from __future__ import annotations

from dataclasses import dataclass

from .memo import cached_instance_hash


@dataclass(frozen=True)
class DivergenceProfile:
    """Control-flow character of a kernel.

    Attributes
    ----------
    divergent_fraction:
        Fraction of dynamic instructions that sit inside data-dependent
        divergent branches.
    branch_paths:
        Average number of distinct paths lanes of a warp take inside
        those regions (2 for a plain if/else).
    tail_fraction:
        Fraction of warps that are ragged boundary warps.
    tail_active_lanes:
        Average number of active lanes in a ragged warp.
    """

    divergent_fraction: float = 0.0
    branch_paths: float = 2.0
    tail_fraction: float = 0.0
    tail_active_lanes: float = 16.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.divergent_fraction <= 1.0):
            raise ValueError("divergent_fraction must be in [0,1]")
        if self.branch_paths < 1.0:
            raise ValueError("branch_paths must be >= 1")
        if not (0.0 <= self.tail_fraction <= 1.0):
            raise ValueError("tail_fraction must be in [0,1]")
        if not (0.0 < self.tail_active_lanes <= 32.0):
            raise ValueError("tail_active_lanes must be in (0,32]")


cached_instance_hash(DivergenceProfile)

#: A kernel with no divergence at all.
UNIFORM = DivergenceProfile()


def warp_execution_efficiency(profile: DivergenceProfile, warp_size: int = 32) -> float:
    """Average active lanes per executed warp-instruction / warp size.

    In a divergent region with *p* serialised paths the hardware
    executes *p* warp-instructions whose active-lane counts sum to at
    most the warp size, so the average active count in that region is
    ``warp_size / p``.
    """
    diverged = profile.divergent_fraction
    uniform = 1.0 - diverged
    # Active lanes per issued warp instruction, averaged over regions.
    active = uniform * warp_size + diverged * (warp_size / profile.branch_paths)
    wee = active / warp_size
    # Ragged boundary warps scale the whole kernel's average.
    tail = profile.tail_fraction
    lane_fill = (1.0 - tail) + tail * (profile.tail_active_lanes / warp_size)
    return max(min(wee * lane_fill, 1.0), 1.0 / warp_size)


def divergence_slowdown(profile: DivergenceProfile) -> float:
    """Execution-time multiplier caused by serialising divergent paths:
    the divergent fraction of instructions issues ``branch_paths``
    times."""
    return 1.0 + profile.divergent_fraction * (profile.branch_paths - 1.0)
