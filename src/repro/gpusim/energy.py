"""Energy model — performance per watt.

A K40c draws up to its 235 W board power under load; datacentre
operators of the paper's era were already ranking accelerators by
images-per-joule.  This extension derives per-kernel and per-iteration
energy from the timing model:

* dynamic power scales with how hard the kernel drives the SMs and the
  DRAM interface (its compute and bandwidth utilisation);
* idle/static power burns regardless (about a third of board power on
  GK110).

The result is a second axis on which the seven implementations
separate: fbfft's short, bandwidth-heavy iterations versus the
unrolling family's long, compute-heavy ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .device import DeviceSpec, K40C
from .timing import KernelTiming

#: Board-power fallbacks for devices with no registered profile
#: (K40c: 235 W TDP; static/idle ~65 W).  The source of truth is the
#: device-profile catalogue (:mod:`repro.devices`) — each profile's
#: ``power.tdp_w`` / ``power.idle_fraction`` carries these numbers,
#: and :func:`device_tdp` consults it first.
TDP_WATTS = {"Tesla K40c": 235.0, "Tesla K20X": 235.0,
             "GTX TITAN X (Maxwell)": 250.0, "Tesla M40": 250.0}
STATIC_FRACTION = 0.28


def device_tdp(device: DeviceSpec) -> float:
    """Board power limit for a modelled device, watts.

    Reads the device-profile registry (the declarative catalogue the
    legacy per-module constants were consolidated into); devices
    without a profile fall back to :data:`TDP_WATTS`, then 235 W.  The
    registry import is deferred: energy is a gpusim leaf module and
    :mod:`repro.devices` sits above gpusim in the layering.
    """
    from ..devices.registry import default_registry
    profile = default_registry().profile_for_spec(device)
    if profile is not None:
        return profile.tdp_w
    return TDP_WATTS.get(device.name, 235.0)


def device_static_fraction(device: DeviceSpec) -> float:
    """Idle/static share of board power (profile ``idle_fraction``,
    falling back to :data:`STATIC_FRACTION`)."""
    from ..devices.registry import default_registry
    profile = default_registry().profile_for_spec(device)
    if profile is not None:
        return profile.idle_fraction
    return STATIC_FRACTION


def kernel_power(device: DeviceSpec, timing: KernelTiming) -> float:
    """Average board power during one kernel, watts.

    ``P = P_static + P_dyn_max * max(compute_util, memory_util)`` with
    the utilisations taken from the roofline terms of the timing.
    """
    tdp = device_tdp(device)
    static = device_static_fraction(device) * tdp
    spec = timing.spec
    # Utilisations of the two limiting resources during the kernel.
    compute_util = 0.0
    if timing.time_s > 0:
        compute_util = min(
            spec.total_flops / (timing.time_s * device.peak_flops), 1.0)
        memory_util = min(
            spec.total_bytes / (timing.time_s * device.memory_bandwidth), 1.0)
    else:  # pragma: no cover - defensive
        memory_util = 0.0
    activity = max(compute_util, memory_util)
    return static + (tdp - static) * activity


def kernel_energy(device: DeviceSpec, timing: KernelTiming) -> float:
    """Energy of one kernel launch set, joules."""
    return kernel_power(device, timing) * timing.time_s


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one iteration's kernel set."""

    energy_j: float
    time_s: float

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0

    def images_per_joule(self, batch: int) -> float:
        if batch <= 0:
            raise ValueError(f"batch must be positive, got {batch}")
        return batch / self.energy_j if self.energy_j else 0.0


def iteration_energy(device: DeviceSpec,
                     timings: Sequence[KernelTiming]) -> EnergyReport:
    """Total energy and time of a kernel set."""
    if not timings:
        raise ValueError("cannot account an empty timing list")
    energy = sum(kernel_energy(device, t) for t in timings)
    time = sum(t.time_s for t in timings)
    return EnergyReport(energy_j=energy, time_s=time)
