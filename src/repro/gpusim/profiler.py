"""nvprof-like profiling session.

The paper's methodology (section III-B) uses nvprof to collect five
metrics and two events per kernel.  :class:`Profiler` plays that role
for the analytic model: framework adapters *launch* kernel specs into
an active session, the session times them through the roofline engine
and stores per-kernel :class:`KernelExecution` rows, and the analysis
harness asks for summaries, hotspot tables and the weighted metric
estimates of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import ProfilerError
from ..obs.context import get_obs
from .device import DeviceSpec, K40C, spec_digest
from .kernels import KernelSpec
from .metrics import MetricSummary, kernel_shares, runtime_shares, weighted_summary
from .timing import KernelTiming, time_kernel
from .transfer import TransferEngine, TransferKind, TransferRecord


@dataclass(frozen=True)
class KernelExecution:
    """One profiled kernel launch (spec + its timing/metrics)."""

    timing: KernelTiming

    @property
    def name(self) -> str:
        return self.timing.spec.name

    @property
    def time_s(self) -> float:
        return self.timing.time_s


class Profiler:
    """Collects kernel executions and transfers for one device.

    Use as a context manager around the code that launches kernels::

        prof = Profiler(K40C)
        with prof.session():
            impl.launch_forward(config, prof)
        print(prof.gpu_time())
    """

    def __init__(self, device: DeviceSpec = K40C):
        self.device = device
        self.executions: List[KernelExecution] = []
        self.transfers = TransferEngine(device)
        self._active = False
        self._observer: Optional[Callable[[KernelExecution], None]] = None
        # Device identity label for the per-kernel time counters,
        # computed once (the digest is cached per spec instance, but
        # the f-string is not worth rebuilding per launch).
        self._device_label = f"{device.name}@{spec_digest(device)}"

    def set_observer(
            self,
            observer: Optional[Callable[[KernelExecution], None]]) -> None:
        """Call ``observer`` with each :class:`KernelExecution` as it is
        recorded (``None`` detaches).  The observability plane uses this
        to stream kernel launches into a live trace without the profiler
        knowing about tracers."""
        self._observer = observer

    # -- session management ----------------------------------------------------

    def session(self) -> "Profiler":
        return self

    def __enter__(self) -> "Profiler":
        if self._active:
            raise ProfilerError("profiler session already active")
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        self._active = False

    def reset(self) -> None:
        """Drop all recorded executions and transfers."""
        self.executions.clear()
        self.transfers.reset()

    # -- recording ----------------------------------------------------------

    def launch(self, spec: KernelSpec) -> KernelTiming:
        """Time a kernel spec and record it.

        Works outside a ``with`` block too (nvprof attaches to whole
        processes); the session form exists so tests can assert
        balanced usage.
        """
        timing = time_kernel(self.device, spec)
        execution = KernelExecution(timing)
        self.executions.append(execution)
        registry = get_obs().registry
        registry.counter("gpusim_kernel_launches_total",
                         role=spec.role.value).inc()
        # Cumulative simulated seconds per kernel — what the telemetry
        # dashboard's Fig-4-style hotspot panel aggregates.  Launches
        # happen only on evalcache misses (memoized dispatches replay
        # timings without re-launching), so this stays off the hot path.
        registry.counter("gpusim_kernel_time_seconds_total",
                         kernel=spec.name, role=spec.role.value,
                         device=self._device_label).inc(timing.time_s)
        if self._observer is not None:
            self._observer(execution)
        return timing

    def launch_all(self, specs: Sequence[KernelSpec]) -> List[KernelTiming]:
        return [self.launch(s) for s in specs]

    def record_transfer(self, kind: TransferKind, nbytes: int,
                        pinned: bool = False, async_: bool = False,
                        chunks: int = 1) -> TransferRecord:
        get_obs().registry.counter(
            "gpusim_transfers_total",
            kind=getattr(kind, "value", str(kind))).inc()
        return self.transfers.copy(kind, nbytes, pinned=pinned,
                                   async_=async_, chunks=chunks)

    # -- queries ------------------------------------------------------------

    def gpu_time(self) -> float:
        """Total kernel time (excludes transfers), seconds."""
        return sum(e.time_s for e in self.executions)

    def timings(self) -> List[KernelTiming]:
        return [e.timing for e in self.executions]

    def summary(self, top_n: Optional[int] = None) -> MetricSummary:
        """Runtime-weighted metric estimate (the Fig. 6 method)."""
        if not self.executions:
            raise ProfilerError("no kernel executions recorded")
        return weighted_summary(self.timings(), top_n=top_n)

    def hotspot_roles(self) -> Dict[str, float]:
        """Runtime share per kernel-role group (Fig. 4)."""
        if not self.executions:
            raise ProfilerError("no kernel executions recorded")
        return runtime_shares(self.timings())

    def hotspot_kernels(self) -> Dict[str, float]:
        """Runtime share per kernel name."""
        if not self.executions:
            raise ProfilerError("no kernel executions recorded")
        return kernel_shares(self.timings())

    def top_kernels(self, n: int = 5) -> List[KernelExecution]:
        """The N longest-running kernel launches."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        return sorted(self.executions, key=lambda e: e.time_s, reverse=True)[:n]
