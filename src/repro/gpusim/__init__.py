"""Analytic GPU performance-model substrate.

This subpackage stands in for the Tesla K40c + CUDA 7.5 + nvprof stack
the paper measured on.  It is a first-order mechanistic model, not a
cycle-accurate simulator: each GPU kernel is described by a
:class:`~repro.gpusim.kernels.KernelSpec` (FLOPs, global/shared memory
traffic, launch geometry, per-thread register and per-block shared
memory usage, and memory-access patterns), and the components here turn
that description into the quantities nvprof reports:

* :mod:`~repro.gpusim.occupancy` — the CUDA occupancy calculation
  (compute-capability 3.5 rules) → *achieved occupancy*;
* :mod:`~repro.gpusim.coalescing` — the 128-byte transaction model →
  *gld/gst efficiency*;
* :mod:`~repro.gpusim.banks` — the 32-bank shared-memory model →
  *shared efficiency* and bank-conflict events;
* :mod:`~repro.gpusim.divergence` — SIMT lane masking → *warp
  execution efficiency*;
* :mod:`~repro.gpusim.timing` — a roofline engine with
  occupancy-dependent latency hiding → kernel *runtime* and *IPC*;
* :mod:`~repro.gpusim.allocator` — device memory with peak tracking →
  the Fig. 5 memory-usage numbers and OOM behaviour;
* :mod:`~repro.gpusim.transfer` / :mod:`~repro.gpusim.stream` — the
  PCIe bus, pinned/pageable bandwidth, and async copy/compute overlap →
  the Fig. 7 transfer overheads;
* :mod:`~repro.gpusim.profiler` — an nvprof-like session that records
  per-kernel metric rows and aggregates them runtime-weighted, the
  method section V-C describes.
"""

from .device import DEVICES, DeviceSpec, K20X, K40C, M40, TITAN_X
from .coalescing import WarpAccess
from .banks import SharedAccess
from .divergence import DivergenceProfile
from .kernels import KernelSpec, LaunchConfig, KernelRole
from .occupancy import OccupancyResult, occupancy
from .timing import KernelTiming, time_kernel
from .allocator import DeviceAllocator
from .transfer import TransferEngine, TransferKind
from .profiler import Profiler, KernelExecution
from .stream import Stream, Timeline
from .roofline import RooflinePoint, analyse as roofline_analyse, ridge_point
from .trace import to_chrome_trace
from .multigpu import ScalingPoint, strong_scaling, weak_scaling
from .energy import EnergyReport, iteration_energy

__all__ = [
    "DeviceSpec",
    "K40C",
    "K20X",
    "TITAN_X",
    "M40",
    "DEVICES",
    "WarpAccess",
    "SharedAccess",
    "DivergenceProfile",
    "KernelSpec",
    "LaunchConfig",
    "KernelRole",
    "OccupancyResult",
    "occupancy",
    "KernelTiming",
    "time_kernel",
    "DeviceAllocator",
    "TransferEngine",
    "TransferKind",
    "Profiler",
    "KernelExecution",
    "Stream",
    "Timeline",
    "RooflinePoint",
    "roofline_analyse",
    "ridge_point",
    "to_chrome_trace",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "EnergyReport",
    "iteration_energy",
]
