"""Heterogeneous-fleet capacity planning.

Answers the operator's question "which mix of devices serves this
workload within the SLO, cheapest first?" by sweeping fleet mixes
through the existing cluster simulator and SLO engine:

1. :func:`parse_fleet` turns a ``--fleet`` string
   (``k40c:4,maxwell:2``) into per-device *ceilings* — the most of
   each device the operator can provision;
2. :func:`enumerate_mixes` expands the ceilings into every non-empty
   mix (``k40c:4,maxwell:2`` → 14 candidates, from one lone ``k40c``
   up to the full fleet);
3. :func:`plan_capacity` runs each mix as a heterogeneous
   :class:`~repro.cluster.fleet.Cluster` over one shared arrival
   trace, evaluates the SLO rules over the mix's end-to-end snapshot,
   prices the mix from the profiles' ``cost_per_hour``, and ranks:
   passing mixes first, cheapest first (ties to lower p99, then fewer
   replicas).

Everything inherits the cluster's determinism: the trace is seeded,
each mix's run is a pure function of ``(trace, mix, seed)``, and
:meth:`CapacityPlan.to_dict` carries no wall-clock state — two
same-seed sweeps serialize byte-identically (the CI ``devices-smoke``
job diffs exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.hist import percentile, summarize
from ..obs.slo import SLOReport, SLORule, evaluate_slo
from ..serve.loadgen import MODEL_SHAPES, Arrival, TrafficSpec, generate_trace
from ..serve.scheduler import ServerConfig
from .registry import get_profile

#: ``--workload`` names -> model mixes (:data:`MODEL_SHAPES` keys).
WORKLOADS: Dict[str, Tuple[str, ...]] = {
    "alexnet": ("AlexNet",),
    "vgg16": ("VGG",),
    "googlenet": ("GoogLeNet",),
    "mixed": ("AlexNet", "VGG", "GoogLeNet"),
}

#: Fleet mixes above this many total candidates are almost certainly a
#: typo (the sweep is a full cluster run per mix).
MAX_MIXES = 512


def parse_fleet(text: str) -> Tuple[Tuple[str, int], ...]:
    """Parse ``slug:count,slug:count`` into validated ceilings.

    Order is preserved (it decides slot order within a mix); slugs
    must name registered profiles; counts must be positive; a repeated
    slug is an error rather than a silent merge.
    """
    if not text or not text.strip():
        raise ValueError("empty fleet spec; expected e.g. 'k40c:4,maxwell:2'")
    ceilings: List[Tuple[str, int]] = []
    seen = set()
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, count_s = part.partition(":")
        name = name.strip()
        if not sep:
            raise ValueError(f"fleet entry {part!r} is missing ':<count>' "
                             f"(expected e.g. 'k40c:4')")
        try:
            count = int(count_s)
        except ValueError:
            raise ValueError(f"fleet entry {part!r} has a non-integer "
                             f"count {count_s!r}") from None
        if count < 1:
            raise ValueError(f"fleet entry {part!r} must have count >= 1")
        profile = get_profile(name)     # raises KeyError on unknown slug
        if profile.name in seen:
            raise ValueError(f"device {profile.name!r} appears twice in "
                             f"the fleet spec")
        seen.add(profile.name)
        ceilings.append((profile.name, count))
    if not ceilings:
        raise ValueError("empty fleet spec; expected e.g. 'k40c:4,maxwell:2'")
    return tuple(ceilings)


def enumerate_mixes(ceilings: Sequence[Tuple[str, int]]
                    ) -> List[Tuple[Tuple[str, int], ...]]:
    """Every non-empty mix within the ceilings, in lexicographic count
    order.  Zero-count devices are dropped from the mix tuple."""
    names = [name for name, _ in ceilings]
    ranges = [range(0, count + 1) for _, count in ceilings]
    total = 1
    for r in ranges:
        total *= len(r)
    if total - 1 > MAX_MIXES:
        raise ValueError(f"fleet spec expands to {total - 1} mixes "
                         f"(limit {MAX_MIXES}); lower the ceilings")
    mixes = []
    for counts in product(*ranges):
        if not any(counts):
            continue
        mixes.append(tuple((name, c) for name, c in zip(names, counts)
                           if c > 0))
    return mixes


def mix_label(mix: Sequence[Tuple[str, int]]) -> str:
    return ",".join(f"{name}:{count}" for name, count in mix)


def mix_slots(mix: Sequence[Tuple[str, int]]) -> Tuple[str, ...]:
    """The per-slot device tuple a mix expands to."""
    slots: List[str] = []
    for name, count in mix:
        slots.extend([name] * count)
    return tuple(slots)


def mix_cost(mix: Sequence[Tuple[str, int]]) -> float:
    return sum(count * get_profile(name).cost_per_hour
               for name, count in mix)


@dataclass(frozen=True)
class FleetOption:
    """One simulated fleet mix with its verdict and price tag."""

    mix: Tuple[Tuple[str, int], ...]
    replicas: int
    cost_per_hour: float
    offered: int
    completed: int
    shed: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    slo: SLOReport

    @property
    def label(self) -> str:
        return mix_label(self.mix)

    @property
    def passed(self) -> bool:
        return self.slo.passed

    @property
    def completion_rate(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    def to_dict(self) -> dict:
        return {
            "mix": self.label,
            "devices": {name: count for name, count in self.mix},
            "replicas": self.replicas,
            "cost_per_hour": self.cost_per_hour,
            "offered": self.offered,
            "completed": self.completed,
            "completion_rate": self.completion_rate,
            "shed": self.shed,
            "latency_ms": {
                "p50": self.latency_p50_ms,
                "p95": self.latency_p95_ms,
                "p99": self.latency_p99_ms,
            },
            "slo": self.slo.to_dict(),
        }


@dataclass(frozen=True)
class CapacityPlan:
    """The ranked answer to one capacity question."""

    workload: str
    fleet_spec: str
    policy: str
    seed: int
    offered: int
    duration_s: float
    rate_rps: float
    options: Tuple[FleetOption, ...]   # ranked: passing cheapest first

    @property
    def best(self) -> Optional[FleetOption]:
        """The cheapest passing mix, or None when nothing passes."""
        return self.options[0] if self.options and self.options[0].passed \
            else None

    def to_dict(self) -> dict:
        best = self.best
        return {
            "workload": self.workload,
            "fleet_spec": self.fleet_spec,
            "policy": self.policy,
            "seed": self.seed,
            "offered": self.offered,
            "duration_s": self.duration_s,
            "rate_rps": self.rate_rps,
            "best": best.label if best is not None else None,
            "options": [o.to_dict() for o in self.options],
        }

    def render(self) -> str:
        lines = [
            f"capacity plan: workload {self.workload}, fleet ceilings "
            f"{self.fleet_spec}, policy {self.policy}",
            f"traffic: {self.offered} arrivals over {self.duration_s:.1f} s "
            f"(~{self.rate_rps:.0f} req/s, seed {self.seed})",
            f"{'mix':24s} {'n':>3s} {'$/h':>7s} {'compl':>7s} "
            f"{'p99 ms':>9s}  verdict",
        ]
        for o in self.options:
            verdict = "PASS" if o.passed else (
                "FAIL " + ",".join(v.rule.name for v in o.slo.failing))
            lines.append(
                f"{o.label:24s} {o.replicas:3d} {o.cost_per_hour:7.2f} "
                f"{o.completion_rate * 100:6.1f}% "
                f"{o.latency_p99_ms:9.2f}  {verdict}")
        best = self.best
        if best is not None:
            lines.append(f"recommendation: {best.label} — cheapest mix "
                         f"meeting every rule at "
                         f"{best.cost_per_hour:.2f} $/h")
        else:
            lines.append("recommendation: none — no mix within the "
                         "ceilings meets the SLO; raise them or relax "
                         "the rules")
        return "\n".join(lines)


def _fleet_snapshot(cluster, offered: int) -> Tuple[dict, List[float]]:
    """End-to-end fleet snapshot for the SLO rules, shaped like a
    registry snapshot: cumulative counters plus full-run latency and
    queue-wait histograms gathered from every replica's completions."""
    latencies: List[float] = []
    waits: List[float] = []
    for replica in cluster.replicas:
        stats = replica.server.stats
        if stats is None:
            continue
        for c in stats.completions:
            latencies.append(c.latency_s)
            waits.append(c.queue_wait_s)
    snapshot = {
        "counters": {
            "serve_requests_offered_total": float(offered),
            "serve_requests_completed_total": float(len(latencies)),
        },
        "histograms": {
            "serve_latency_seconds": summarize(latencies),
            "serve_queue_wait_seconds": summarize(waits),
        },
    }
    return snapshot, latencies


def evaluate_mix(mix: Tuple[Tuple[str, int], ...],
                 trace: Sequence[Arrival],
                 rules: Tuple[SLORule, ...],
                 server: ServerConfig,
                 policy: str,
                 seed: int) -> FleetOption:
    """Run one mix over ``trace`` and score it against ``rules``."""
    # Deferred: repro.cluster imports this package's registry, so a
    # top-level import back would cycle.
    from ..cluster.fleet import Cluster, ClusterConfig
    slots = mix_slots(mix)
    config = ClusterConfig(replicas=len(slots), policy=policy,
                           server=server, seed=seed, devices=slots)
    cluster = Cluster(config)
    cluster.run(trace)
    offered = len(trace)
    snapshot, latencies = _fleet_snapshot(cluster, offered)
    completed = len(latencies)
    latencies.sort()
    label = mix_label(mix)
    return FleetOption(
        mix=mix,
        replicas=len(slots),
        cost_per_hour=mix_cost(mix),
        offered=offered,
        completed=completed,
        shed=offered - completed,
        latency_p50_ms=percentile(latencies, 50) * 1000,
        latency_p95_ms=percentile(latencies, 95) * 1000,
        latency_p99_ms=percentile(latencies, 99) * 1000,
        slo=evaluate_slo(snapshot, rules, source=label),
    )


def plan_capacity(fleet: str,
                  rules: Tuple[SLORule, ...],
                  workload: str = "mixed",
                  duration_s: float = 5.0,
                  rate_rps: float = 500.0,
                  pattern: str = "poisson",
                  policy: str = "device-affinity",
                  seed: int = 0,
                  server: Optional[ServerConfig] = None) -> CapacityPlan:
    """Sweep every mix within the ``fleet`` ceilings and rank them.

    One arrival trace is generated for the workload and shared by
    every mix, so options differ only in the fleet serving it.
    """
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; "
                       f"options: {', '.join(sorted(WORKLOADS))}")
    ceilings = parse_fleet(fleet)
    spec = TrafficSpec(duration_s=duration_s, rate_rps=rate_rps,
                       pattern=pattern, seed=seed,
                       models=WORKLOADS[workload])
    trace = generate_trace(spec)
    base = server if server is not None else ServerConfig()
    options = [evaluate_mix(mix, trace, rules, base, policy, seed)
               for mix in enumerate_mixes(ceilings)]
    # Passing mixes first, cheapest first; ties to lower p99, then
    # smaller fleets, then the label (total order => deterministic).
    options.sort(key=lambda o: (not o.passed, o.cost_per_hour,
                                o.latency_p99_ms, o.replicas, o.label))
    return CapacityPlan(
        workload=workload,
        fleet_spec=mix_label(ceilings),
        policy=policy,
        seed=seed,
        offered=len(trace),
        duration_s=duration_s,
        rate_rps=rate_rps,
        options=tuple(options),
    )
