"""Named, versioned device profiles.

A :class:`DeviceProfile` wraps one :class:`~repro.gpusim.device
.DeviceSpec` — the analytic model's view of the silicon — together
with everything the layers above the model need to treat the device as
a *unit of capacity*:

* a short registry slug (``k40c``, ``maxwell``, ``pascal``) that CLI
  flags and fleet strings (``k40c:4,maxwell:2``) refer to;
* board-power parameters (TDP and idle fraction) consumed by the
  energy model (:mod:`repro.gpusim.energy`), previously a hard-coded
  per-name table in that module;
* a relative hourly cost, the objective the capacity planner
  (:mod:`repro.devices.plan`) minimises when ranking fleet mixes;
* a profile ``version`` and a content :attr:`~DeviceProfile.digest`
  so caches can prove two evaluations used the same device model.

Profiles are declarative: the shipped catalogue lives as JSON under
``repro/devices/profiles/`` (schema in :mod:`repro.devices.schema`),
and :meth:`DeviceProfile.to_dict` / :meth:`DeviceProfile.from_dict`
round-trip exactly — the ``k40c`` profile rebuilds a spec equal,
field for field, to the hand-built :data:`~repro.gpusim.device.K40C`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Dict

from ..gpusim.device import DeviceSpec, spec_digest

#: Bump when the profile document layout changes incompatibly.
PROFILE_SCHEMA_VERSION = 1

#: DeviceSpec field names, in declaration order (the canonical
#: serialization order for profile documents and digests).
SPEC_FIELDS = tuple(f.name for f in fields(DeviceSpec))

#: DeviceSpec fields that are integral counts/sizes (the rest are
#: floats: rates, bandwidths, seconds).
_INT_SPEC_FIELDS = frozenset((
    "sm_count", "cores_per_sm", "flops_per_core_cycle",
    "global_memory_bytes", "registers_per_sm", "register_alloc_unit",
    "max_registers_per_thread", "shared_memory_per_sm",
    "shared_alloc_unit", "max_shared_per_block", "max_threads_per_sm",
    "max_threads_per_block", "max_blocks_per_sm", "warp_size",
    "shared_banks", "bank_width_bytes", "transaction_bytes",
))


def spec_to_dict(spec: DeviceSpec) -> Dict[str, object]:
    """Every spec field as a JSON-ready mapping, declaration order."""
    return {name: getattr(spec, name) for name in SPEC_FIELDS}


def spec_from_dict(doc: Dict[str, object]) -> DeviceSpec:
    """Rebuild a spec from :func:`spec_to_dict` output (or a validated
    profile document's ``spec`` section).  Integral fields tolerate
    JSON floats with integral values (``1.2884901888e9``-style
    scientific notation), everything else coerces to float."""
    kwargs = {}
    for name in SPEC_FIELDS:
        value = doc[name]
        if name == "name":
            kwargs[name] = str(value)
        elif name in _INT_SPEC_FIELDS:
            kwargs[name] = int(value)
        else:
            kwargs[name] = float(value)
    return DeviceSpec(**kwargs)


@dataclass(frozen=True)
class DeviceProfile:
    """One named device: the analytic spec plus capacity metadata."""

    #: Registry slug (``k40c``); lower-case, stable across versions.
    name: str
    #: Monotonic profile version (calibration refits bump it).
    version: int
    description: str
    spec: DeviceSpec
    #: Board power limit, watts (drives :mod:`repro.gpusim.energy`).
    tdp_w: float
    #: Fraction of TDP burned at idle (static/leakage power).
    idle_fraction: float
    #: Relative cost of one device-hour, in arbitrary but
    #: catalogue-consistent units (the capacity planner's objective).
    cost_per_hour: float
    #: Where the numbers came from (paper section, datasheet, ...).
    source: str = ""

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ValueError(f"profile name must be a lower-case slug, "
                             f"got {self.name!r}")
        if self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")
        if self.tdp_w <= 0:
            raise ValueError(f"tdp_w must be positive, got {self.tdp_w}")
        if not (0.0 <= self.idle_fraction < 1.0):
            raise ValueError(f"idle_fraction must be in [0, 1), "
                             f"got {self.idle_fraction}")
        if self.cost_per_hour <= 0:
            raise ValueError(f"cost_per_hour must be positive, "
                             f"got {self.cost_per_hour}")

    # -- identity ----------------------------------------------------------

    @property
    def digest(self) -> str:
        """Content digest over the whole profile document (short sha256
        of the canonical JSON serialization).  Evaluation-cache keys
        embed the *spec* digest (:func:`~repro.gpusim.device
        .spec_digest`); this one additionally covers the capacity
        metadata, so archived planner artifacts can prove which
        catalogue they were computed against."""
        blob = json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    @property
    def spec_digest(self) -> str:
        """Digest of the analytic spec alone (the cache-key component)."""
        return spec_digest(self.spec)

    # -- JSON --------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "source": self.source,
            "spec": spec_to_dict(self.spec),
            "power": {
                "tdp_w": self.tdp_w,
                "idle_fraction": self.idle_fraction,
            },
            "economics": {
                "cost_per_hour": self.cost_per_hour,
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "DeviceProfile":
        """Build from a *validated* profile document (see
        :func:`repro.devices.schema.validate_profile`)."""
        power = doc["power"]
        return cls(
            name=doc["name"],
            version=int(doc["version"]),
            description=doc["description"],
            source=doc.get("source", ""),
            spec=spec_from_dict(doc["spec"]),
            tdp_w=float(power["tdp_w"]),
            idle_fraction=float(power["idle_fraction"]),
            cost_per_hour=float(doc["economics"]["cost_per_hour"]),
        )
