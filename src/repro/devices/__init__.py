"""Named device profiles and heterogeneous-fleet capacity planning.

The devices subsystem turns the hand-built
:class:`~repro.gpusim.device.DeviceSpec` constants into a declarative,
versioned catalogue and threads device *identity* through the stack:

* :mod:`repro.devices.profile` — :class:`DeviceProfile`: a spec plus
  power (TDP, idle fraction) and economics (cost/hour), with a
  content digest and a canonical JSON form;
* :mod:`repro.devices.schema` — declarative validation of profile
  documents (:func:`validate_profile` accumulates every violation;
  :func:`ensure_valid` raises :class:`ProfileValidationError`);
* :mod:`repro.devices.registry` — loads the shipped ``profiles/*.json``
  (``k40c``, ``k20x``, ``maxwell``, ``m40``, ``pascal``), publishes
  their specs into :data:`repro.gpusim.device.DEVICES`, and guarantees
  the legacy-named profiles rebuild the hand-built specs exactly
  (:func:`selftest`);
* :mod:`repro.devices.plan` — the capacity planner: sweep every fleet
  mix within ``--fleet`` ceilings through the cluster simulator and
  SLO engine, rank passing mixes cheapest first
  (:func:`plan_capacity`).

Cache isolation: evaluation-cache and dispatch-memo keys carry
:func:`~repro.gpusim.device.spec_digest`, so a plan computed for one
device can never serve another — even one registered under the same
display name with different numbers.
"""

from .plan import (MAX_MIXES, WORKLOADS, CapacityPlan, FleetOption,
                   enumerate_mixes, evaluate_mix, mix_cost, mix_label,
                   mix_slots, parse_fleet, plan_capacity)
from .profile import PROFILE_SCHEMA_VERSION, DeviceProfile, spec_from_dict, \
    spec_to_dict
from .registry import (PROFILE_DIR, DeviceRegistry, default_registry,
                       get_profile, profile_names, resolve_device, selftest)
from .schema import ProfileValidationError, ensure_valid, validate_profile

__all__ = [
    "CapacityPlan",
    "DeviceProfile",
    "DeviceRegistry",
    "FleetOption",
    "MAX_MIXES",
    "PROFILE_DIR",
    "PROFILE_SCHEMA_VERSION",
    "ProfileValidationError",
    "WORKLOADS",
    "default_registry",
    "ensure_valid",
    "enumerate_mixes",
    "evaluate_mix",
    "get_profile",
    "mix_cost",
    "mix_label",
    "mix_slots",
    "parse_fleet",
    "plan_capacity",
    "profile_names",
    "resolve_device",
    "selftest",
    "spec_from_dict",
    "spec_to_dict",
    "validate_profile",
]
