"""Declarative schema validation for device-profile documents.

The shipped catalogue under ``repro/devices/profiles/`` is plain JSON;
this module is the gate between those files and
:class:`~repro.devices.profile.DeviceProfile`.  Validation is
hand-rolled (the container has no ``jsonschema``) but declarative: the
shape lives in the :data:`PROFILE_SCHEMA` table, and
:func:`validate_profile` walks it, accumulating *every* problem with a
JSON-pointer-style path (``spec.sm_count: expected int``) rather than
bailing on the first, so ``repro devices --validate`` reports a broken
profile in one pass.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .profile import PROFILE_SCHEMA_VERSION, SPEC_FIELDS, _INT_SPEC_FIELDS


class ProfileValidationError(ValueError):
    """A profile document failed schema validation.

    ``errors`` holds one ``path: problem`` string per violation.
    """

    def __init__(self, name: str, errors: List[str]):
        self.profile = name
        self.errors = list(errors)
        joined = "; ".join(self.errors)
        super().__init__(f"profile {name!r} invalid: {joined}")


# (required, type, predicate, description) per field.  ``type`` of
# "number" admits int and float; "int" requires an integral value.
_FieldRule = Tuple[bool, str, str]

#: Top-level document shape.  Nested sections carry their own tables.
PROFILE_SCHEMA: Dict[str, _FieldRule] = {
    "schema_version": (True, "int", "== PROFILE_SCHEMA_VERSION"),
    "name": (True, "str", "non-empty lower-case slug"),
    "version": (True, "int", ">= 1"),
    "description": (True, "str", "non-empty"),
    "source": (False, "str", ""),
    "spec": (True, "object", "one entry per DeviceSpec field"),
    "power": (True, "object", "tdp_w > 0, 0 <= idle_fraction < 1"),
    "economics": (True, "object", "cost_per_hour > 0"),
}

POWER_SCHEMA: Dict[str, _FieldRule] = {
    "tdp_w": (True, "number", "> 0"),
    "idle_fraction": (True, "number", "in [0, 1)"),
}

ECONOMICS_SCHEMA: Dict[str, _FieldRule] = {
    "cost_per_hour": (True, "number", "> 0"),
}


def _is_int(value: object) -> bool:
    # bool is an int subclass but never a valid count.
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: object) -> bool:
    return (_is_int(value)
            or (isinstance(value, float) and value == value))  # not NaN


def _check_table(doc: dict, table: Dict[str, _FieldRule], prefix: str,
                 errors: List[str]) -> None:
    for key, (required, kind, _desc) in table.items():
        path = f"{prefix}{key}"
        if key not in doc:
            if required:
                errors.append(f"{path}: missing")
            continue
        value = doc[key]
        if kind == "str" and not isinstance(value, str):
            errors.append(f"{path}: expected string")
        elif kind == "int" and not _is_int(value):
            errors.append(f"{path}: expected int")
        elif kind == "number" and not _is_number(value):
            errors.append(f"{path}: expected number")
        elif kind == "object" and not isinstance(value, dict):
            errors.append(f"{path}: expected object")
    for key in doc:
        if key not in table:
            errors.append(f"{prefix}{key}: unknown field")


def validate_profile(doc: object) -> List[str]:
    """Return every schema violation in ``doc`` (empty list == valid)."""
    if not isinstance(doc, dict):
        return ["document: expected a JSON object"]
    errors: List[str] = []
    _check_table(doc, PROFILE_SCHEMA, "", errors)

    if _is_int(doc.get("schema_version")) and \
            doc["schema_version"] != PROFILE_SCHEMA_VERSION:
        errors.append(f"schema_version: expected {PROFILE_SCHEMA_VERSION}, "
                      f"got {doc['schema_version']}")
    name = doc.get("name")
    if isinstance(name, str) and (not name or name != name.lower()):
        errors.append("name: must be a non-empty lower-case slug")
    if _is_int(doc.get("version")) and doc["version"] < 1:
        errors.append("version: must be >= 1")
    if isinstance(doc.get("description"), str) and not doc["description"]:
        errors.append("description: must be non-empty")

    spec = doc.get("spec")
    if isinstance(spec, dict):
        for field_name in SPEC_FIELDS:
            path = f"spec.{field_name}"
            if field_name not in spec:
                errors.append(f"{path}: missing")
                continue
            value = spec[field_name]
            if field_name == "name":
                if not isinstance(value, str) or not value:
                    errors.append(f"{path}: expected non-empty string")
            elif field_name in _INT_SPEC_FIELDS:
                # JSON has one number type; accept 2048.0 but not 20.5.
                if not _is_number(value) or float(value) != int(value):
                    errors.append(f"{path}: expected integral number")
                elif value <= 0:
                    errors.append(f"{path}: must be positive")
            else:
                if not _is_number(value):
                    errors.append(f"{path}: expected number")
                elif value < 0:
                    errors.append(f"{path}: must be non-negative")
        for field_name in spec:
            if field_name not in SPEC_FIELDS:
                errors.append(f"spec.{field_name}: unknown field")

    power = doc.get("power")
    if isinstance(power, dict):
        _check_table(power, POWER_SCHEMA, "power.", errors)
        tdp = power.get("tdp_w")
        if _is_number(tdp) and tdp <= 0:
            errors.append("power.tdp_w: must be positive")
        idle = power.get("idle_fraction")
        if _is_number(idle) and not (0.0 <= idle < 1.0):
            errors.append("power.idle_fraction: must be in [0, 1)")

    econ = doc.get("economics")
    if isinstance(econ, dict):
        _check_table(econ, ECONOMICS_SCHEMA, "economics.", errors)
        cost = econ.get("cost_per_hour")
        if _is_number(cost) and cost <= 0:
            errors.append("economics.cost_per_hour: must be positive")

    return errors


def ensure_valid(doc: object, name: str = "<anonymous>") -> dict:
    """Validate and return ``doc``, raising on any violation."""
    errors = validate_profile(doc)
    if errors:
        raise ProfileValidationError(name, errors)
    assert isinstance(doc, dict)
    return doc
