"""The device-profile registry.

Loads every ``profiles/*.json`` document shipped with the package
(schema-validated), exposes them by slug (``k40c``) *or* by the spec's
full display name (``Tesla K40c``), and registers each profile's spec
into :data:`repro.gpusim.device.DEVICES` so the rest of the stack —
CLI ``--device`` choices, :func:`~repro.core.evalcache.cacheable`,
cross-device sensitivity sweeps — sees registry devices and hand-built
ones through the same map.

Identity guarantee: for the devices that predate this subsystem
(``k40c``, ``k20x``, ``maxwell``, ``m40``) the JSON profile rebuilds a
spec *equal field-for-field* to the hand-built module constant, so
registration replaces nothing and every existing report stays
byte-identical.  :func:`repro.devices.selftest` (used by the CI
``devices-smoke`` job) asserts exactly this.

Use the module-level helpers (:func:`get_profile`,
:func:`resolve_device`, :func:`profile_names`) against the shared
default registry; construct a :class:`DeviceRegistry` directly only in
tests that need an isolated catalogue.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..gpusim import device as _device_module
from ..gpusim.device import DeviceSpec
from .profile import DeviceProfile
from .schema import ensure_valid

#: Directory holding the shipped profile documents.
PROFILE_DIR = Path(__file__).resolve().parent / "profiles"


class DeviceRegistry:
    """A catalogue of named device profiles."""

    def __init__(self) -> None:
        self._profiles: Dict[str, DeviceProfile] = {}
        # Display-name -> slug, for resolve() on full device names.
        self._by_display: Dict[str, str] = {}

    # -- loading -----------------------------------------------------------

    def register(self, profile: DeviceProfile, *,
                 publish: bool = False) -> DeviceProfile:
        """Add ``profile`` to the catalogue.

        Re-registering a slug is an error unless the profile is
        identical (idempotent reload).  With ``publish=True`` the
        profile's spec also enters :data:`repro.gpusim.device.DEVICES`;
        a conflicting spec under the same display name is rejected
        rather than silently replacing what existing figures were
        computed with.
        """
        existing = self._profiles.get(profile.name)
        if existing is not None:
            if existing == profile:
                return existing
            raise ValueError(
                f"profile {profile.name!r} already registered with "
                f"different content (digest {existing.digest} vs "
                f"{profile.digest})")
        display = profile.spec.name
        published = _device_module.DEVICES.get(display)
        if publish and published is not None and published != profile.spec:
            raise ValueError(
                f"profile {profile.name!r} would replace device "
                f"{display!r} with a different spec")
        self._profiles[profile.name] = profile
        self._by_display[display] = profile.name
        if publish and published is None:
            _device_module.DEVICES[display] = profile.spec
        return profile

    def load_file(self, path: Union[str, Path], *,
                  publish: bool = False) -> DeviceProfile:
        path = Path(path)
        with open(path) as fh:
            doc = json.load(fh)
        ensure_valid(doc, name=path.name)
        profile = DeviceProfile.from_dict(doc)
        if profile.name != path.stem:
            raise ValueError(f"profile file {path.name!r} declares name "
                             f"{profile.name!r}; file name and profile "
                             f"name must match")
        return self.register(profile, publish=publish)

    def load_dir(self, directory: Union[str, Path], *,
                 publish: bool = False) -> List[DeviceProfile]:
        """Load every ``*.json`` under ``directory``, sorted by name."""
        return [self.load_file(path, publish=publish)
                for path in sorted(Path(directory).glob("*.json"))]

    # -- lookup ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self) -> Iterator[DeviceProfile]:
        return iter(self._profiles.values())

    def __contains__(self, name: str) -> bool:
        return name in self._profiles or name in self._by_display

    def names(self) -> List[str]:
        return sorted(self._profiles)

    def get(self, name: str) -> DeviceProfile:
        """Profile by slug or by the spec's full display name."""
        slug = self._by_display.get(name, name)
        try:
            return self._profiles[slug]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise KeyError(f"unknown device profile {name!r} "
                           f"(known: {known})") from None

    def find(self, name: str) -> Optional[DeviceProfile]:
        slug = self._by_display.get(name, name)
        return self._profiles.get(slug)

    def resolve(self, device: Union[str, DeviceSpec]) -> DeviceSpec:
        """Map a slug, display name, or spec onto a :class:`DeviceSpec`.

        Accepting specs verbatim lets call sites take one
        ``device=`` argument for both worlds.
        """
        if isinstance(device, DeviceSpec):
            return device
        return self.get(device).spec

    def profile_for_spec(self, spec: DeviceSpec) -> Optional[DeviceProfile]:
        """The registered profile whose spec equals ``spec``, if any."""
        profile = self.find(spec.name)
        if profile is not None and profile.spec == spec:
            return profile
        return None


# ---------------------------------------------------------------------------
# shared default registry
# ---------------------------------------------------------------------------

_default: Optional[DeviceRegistry] = None


def default_registry() -> DeviceRegistry:
    """The process-wide registry, loading the shipped catalogue once."""
    global _default
    if _default is None:
        registry = DeviceRegistry()
        registry.load_dir(PROFILE_DIR, publish=True)
        _default = registry
    return _default


def profile_names() -> List[str]:
    return default_registry().names()


def get_profile(name: str) -> DeviceProfile:
    return default_registry().get(name)


def resolve_device(device: Union[str, DeviceSpec]) -> DeviceSpec:
    """Resolve against the default registry, falling back to the
    hand-built :data:`~repro.gpusim.device.DEVICES` display names."""
    if isinstance(device, DeviceSpec):
        return device
    registry = default_registry()
    profile = registry.find(device)
    if profile is not None:
        return profile.spec
    spec = _device_module.DEVICES.get(device)
    if spec is not None:
        return spec
    known = ", ".join(registry.names())
    raise KeyError(f"unknown device {device!r} (profiles: {known})")


def selftest() -> List[str]:
    """Cross-check the shipped catalogue against the hand-built specs.

    Returns a list of problems (empty == healthy); the CI
    ``devices-smoke`` job and ``repro devices --validate`` fail on any.
    Covers the ISSUE's byte-identity requirement: the ``k40c`` JSON
    path must rebuild *exactly* the legacy constructor's spec.
    """
    problems: List[str] = []
    registry = default_registry()
    legacy = {
        "k40c": _device_module.K40C,
        "k20x": _device_module.K20X,
        "maxwell": _device_module.TITAN_X,
        "m40": _device_module.M40,
    }
    for slug, spec in legacy.items():
        profile = registry.find(slug)
        if profile is None:
            problems.append(f"{slug}: shipped profile missing")
            continue
        if profile.spec != spec:
            diffs = [
                f"{name}: profile={getattr(profile.spec, name)!r} "
                f"legacy={getattr(spec, name)!r}"
                for name in (f.name for f in fields(DeviceSpec))
                if getattr(profile.spec, name) != getattr(spec, name)
            ]
            problems.append(f"{slug}: spec diverges from legacy "
                            f"constructor ({'; '.join(diffs)})")
    for profile in registry:
        rebuilt = DeviceProfile.from_dict(profile.to_dict())
        if rebuilt != profile:
            problems.append(f"{profile.name}: to_dict/from_dict round "
                            f"trip not identical")
        published = _device_module.DEVICES.get(profile.spec.name)
        if published != profile.spec:
            problems.append(f"{profile.name}: spec not published to "
                            f"gpusim.DEVICES")
    return problems
