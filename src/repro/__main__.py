"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (tables/figures).
``run <id> [...]``
    Regenerate one or more experiments (``all`` for everything).
``advise b i f k s [c] [--memory MB]``
    Ask the advisor which implementation fits a configuration.
``compare b i f k s [c]``
    Head-to-head table for one configuration.
``ablations``
    Run the simulator design-choice ablations.
``export <dir>``
    Write the figure data as CSV files for external plotting.
``devices``
    Cross-GPU sensitivity: headline results on every modelled device.
``audit b i f k s [c]``
    Run the consistency audits on every implementation.
``report <path>``
    Regenerate the full study as one markdown document.
"""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run_experiment
from .config import ConvConfig
from .core.ablations import run_all as run_ablations
from .core.advisor import Advisor
from .core.report import table
from .frameworks.registry import all_implementations


def _config_from_args(args) -> ConvConfig:
    return ConvConfig(batch=args.b, input_size=args.i, filters=args.f,
                      kernel_size=args.k, stride=args.s, channels=args.c)


def cmd_list(_args) -> int:
    for exp_id, exp in sorted(EXPERIMENTS.items()):
        print(f"{exp_id:8s} {exp.title}")
    return 0


def cmd_run(args) -> int:
    targets = sorted(EXPERIMENTS) if "all" in args.ids else args.ids
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}", file=sys.stderr)
            return 1
        print(f"== {exp_id}: {EXPERIMENTS[exp_id].title} ==")
        _, text = run_experiment(exp_id)
        print(text)
        print()
    return 0


def cmd_advise(args) -> int:
    config = _config_from_args(args)
    budget = args.memory * 2**20 if args.memory else None
    print(Advisor().recommend(config, memory_budget=budget).render())
    return 0


def cmd_compare(args) -> int:
    config = _config_from_args(args)
    rows = []
    for impl in all_implementations():
        if not impl.supports(config):
            rows.append([impl.paper_name, "-", "-"])
            continue
        p = impl.profile_iteration(config)
        rows.append([impl.paper_name,
                     f"{p.total_time_s * 1000:.2f}",
                     f"{impl.peak_memory_bytes(config) / 2**20:.0f}"])
    print(table(["Implementation", "Time (ms)", "Memory (MB)"], rows,
                title=f"{config}"))
    return 0


def cmd_ablations(_args) -> int:
    for r in run_ablations():
        print(r.render())
        print()
    return 0


def cmd_export(args) -> int:
    import os

    from .config import SWEEPS
    from .core.export import (breakdown_csv, memory_sweep_csv, metrics_csv,
                              runtime_sweep_csv, transfer_csv)
    from .core.gpu_metrics import gpu_metric_profile
    from .core.hotspot_layers import hotspot_layer_analysis
    from .core.memory_comparison import memory_sweep
    from .core.runtime_comparison import runtime_sweep
    from .core.transfer_overhead import transfer_overhead_profile

    os.makedirs(args.dir, exist_ok=True)
    for sweep in SWEEPS:
        runtime_sweep_csv(runtime_sweep(sweep),
                          os.path.join(args.dir, f"fig3_{sweep}.csv"))
        memory_sweep_csv(memory_sweep(sweep),
                         os.path.join(args.dir, f"fig5_{sweep}.csv"))
    breakdown_csv(hotspot_layer_analysis(),
                  os.path.join(args.dir, "fig2_breakdown.csv"))
    metrics_csv(gpu_metric_profile(),
                os.path.join(args.dir, "fig6_metrics.csv"))
    transfer_csv(transfer_overhead_profile(),
                 os.path.join(args.dir, "fig7_transfers.csv"))
    print(f"wrote 13 CSV files to {args.dir}")
    return 0


def cmd_devices(_args) -> int:
    from .core.sensitivity import device_comparison, render_device_comparison

    print(render_device_comparison(device_comparison()))
    return 0


def cmd_audit(args) -> int:
    from .core.validation import audit_all

    config = _config_from_args(args)
    ok = True
    for report in audit_all(config):
        print(report.render())
        ok = ok and report.ok
    return 0 if ok else 1


def cmd_report(args) -> int:
    from .core.full_report import write_report

    write_report(args.path, include_extensions=not args.no_extensions)
    print(f"wrote {args.path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Performance Analysis of GPU-based "
                    "Convolutional Neural Networks' (ICPP 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="regenerate experiments")
    p_run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    p_run.set_defaults(fn=cmd_run)

    for name, fn in (("advise", cmd_advise), ("compare", cmd_compare)):
        p = sub.add_parser(name)
        p.add_argument("b", type=int, help="mini-batch size")
        p.add_argument("i", type=int, help="input size")
        p.add_argument("f", type=int, help="filter count")
        p.add_argument("k", type=int, help="kernel size")
        p.add_argument("s", type=int, help="stride")
        p.add_argument("c", type=int, nargs="?", default=3,
                       help="input channels (default 3)")
        if name == "advise":
            p.add_argument("--memory", type=int, default=None,
                           help="device memory budget in MB")
        p.set_defaults(fn=fn)

    sub.add_parser("ablations",
                   help="run design-choice ablations").set_defaults(
        fn=cmd_ablations)

    p_export = sub.add_parser("export", help="write figure data as CSV")
    p_export.add_argument("dir", help="output directory")
    p_export.set_defaults(fn=cmd_export)

    sub.add_parser("devices",
                   help="headline results across modelled GPUs").set_defaults(
        fn=cmd_devices)

    p_audit = sub.add_parser(
        "audit", help="run the consistency audits on every implementation")
    for field, hint in (("b", "mini-batch size"), ("i", "input size"),
                        ("f", "filter count"), ("k", "kernel size"),
                        ("s", "stride")):
        p_audit.add_argument(field, type=int, help=hint)
    p_audit.add_argument("c", type=int, nargs="?", default=3,
                         help="input channels (default 3)")
    p_audit.set_defaults(fn=cmd_audit)

    p_report = sub.add_parser(
        "report", help="regenerate the full study as one markdown file")
    p_report.add_argument("path", help="output markdown path")
    p_report.add_argument("--no-extensions", action="store_true",
                          help="paper artifacts only")
    p_report.set_defaults(fn=cmd_report)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
