"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the reproducible experiments (tables/figures).
``run <id> [...]``
    Regenerate one or more experiments (``all`` for everything).
``advise b i f k s [c] [--memory MB]``
    Ask the advisor which implementation fits a configuration.
``compare b i f k s [c]``
    Head-to-head table for one configuration.
``ablations``
    Run the simulator design-choice ablations.
``export <dir>``
    Write the figure data as CSV files for external plotting.
``devices``
    Cross-GPU sensitivity: headline results on every modelled device.
``audit b i f k s [c]``
    Run the consistency audits on every implementation.
``report <path>``
    Regenerate the full study as one markdown document.
``serve [--rate ... --duration ...]``
    Run simulated inference traffic through the serving subsystem.
``loadgen [--seed ...]``
    Generate a deterministic trace and compare dynamic batching
    against forced batch=1 on it.
``chaos [--fault-plan ...] [--cluster --fleet-plan ...]``
    Run the same traffic twice — fault-free and under a named fault
    plan — and report the resilience stats (retries, fallbacks,
    breaker trips, shed causes) plus a determinism digest.  With
    ``--cluster``, inject a named *fleet* fault plan (crashes,
    degrades, flapping, correlated domain outages) into a replicated
    fleet with the self-healing plane attached, and additionally gate
    on recovery: post-recovery tail latency back at the pre-fault
    baseline, and a reconciled self-healing scorecard.
``cluster [--replicas N --policy p2c --slo ... --autoscale]``
    Serve the traffic across a replicated fleet of simulated GPUs:
    pluggable routing, per-replica fault plans and scheduled kills,
    and (with ``--autoscale``) SLO-driven scale up / graceful drain.
    ``--health`` attaches the self-healing plane (heartbeat probes,
    supervisor restarts); ``--hedge-after-ms`` adds hedged requests,
    ``--fleet-plan`` injects fleet chaos.
``trace [--out ...]``
    Run one traced serving run and export its span timeline
    (Chrome-trace/Perfetto JSON, or the JSONL event log).
``analyze <trace.jsonl> [--baseline other.jsonl]``
    Offline trace analytics: critical path, span aggregates and the
    hotspot table; with ``--baseline``, a ranked "what got slower and
    why" diff between the two runs.
``slo <metrics.json> [--rules rules.json]``
    Evaluate declarative SLO rules against a saved metrics snapshot;
    a failing rule exits non-zero (CI gate).
``regression [--baseline ...] [--tolerance ...]``
    Diff the calibrated headline quantities against the stored
    baseline; any drift beyond tolerance exits non-zero (CI gate).

``serve``, ``chaos`` and ``compare`` also accept ``--trace PATH``
(record the run's span tree) and ``--metrics [PATH]`` (emit the
end-of-run metrics snapshot; with no PATH it prints, under ``--json``
it embeds).  ``serve --slo [RULES]`` attaches the simulated-time SLO
monitor to the run.
"""

from __future__ import annotations

import argparse
import sys

from . import EXPERIMENTS, run_experiment
from .config import ConvConfig
from .core.ablations import run_all as run_ablations
from .core.advisor import Advisor
from .core.report import table
from .frameworks.registry import all_implementations


def _config_from_args(args) -> ConvConfig:
    return ConvConfig(batch=args.b, input_size=args.i, filters=args.f,
                      kernel_size=args.k, stride=args.s, channels=args.c)


def _write_trace(path, tracer, registry, **meta) -> None:
    """Write a recorded span forest: Chrome-trace JSON, or the JSONL
    event log when ``path`` ends in ``.jsonl``.  Notices go to stderr
    so ``--json`` stdout stays machine-readable."""
    from .obs.export import write_chrome_trace, write_jsonl

    if path.endswith(".jsonl"):
        n = write_jsonl(path, tracer)
        print(f"wrote {n} trace records to {path}", file=sys.stderr)
    else:
        write_chrome_trace(path, tracer, registry, **meta)
        print(f"wrote {tracer.span_count()}-span trace to {path}",
              file=sys.stderr)


def _emit_metrics(args, registry, embed=None) -> None:
    """Handle ``--metrics``: ``-`` prints the plain-text snapshot (or
    embeds it into the ``embed`` JSON document), a path writes the JSON
    snapshot."""
    from .obs.export import render_metrics, write_metrics

    target = getattr(args, "metrics", None)
    if not target:
        return
    if target == "-":
        if embed is not None:
            embed["metrics"] = registry.snapshot()
        else:
            print()
            print(render_metrics(registry))
    else:
        write_metrics(target, registry)
        print(f"wrote metrics snapshot to {target}", file=sys.stderr)


def cmd_list(_args) -> int:
    for exp_id, exp in sorted(EXPERIMENTS.items()):
        print(f"{exp_id:8s} {exp.title}")
    return 0


def cmd_run(args) -> int:
    targets = sorted(EXPERIMENTS) if "all" in args.ids else args.ids
    for exp_id in targets:
        if exp_id not in EXPERIMENTS:
            print(f"unknown experiment {exp_id!r}", file=sys.stderr)
            return 1
        print(f"== {exp_id}: {EXPERIMENTS[exp_id].title} ==")
        _, text = run_experiment(exp_id)
        print(text)
        print()
    return 0


def cmd_advise(args) -> int:
    config = _config_from_args(args)
    budget = args.memory * 2**20 if args.memory else None
    print(Advisor().recommend(config, memory_budget=budget).render())
    return 0


def cmd_compare(args) -> int:
    import json
    import time

    from .core import evalcache
    from .core.parallel import make_executor
    from .gpusim.device import K40C
    from .obs.context import NULL_OBS, Observability, obs_session

    config = _config_from_args(args)
    cache = evalcache.DISABLED if args.no_cache else None
    obs = NULL_OBS
    if args.trace or args.metrics:
        from .gpusim.timing import SimClock
        from .obs.tracer import SimTracer
        obs = Observability(
            tracer=SimTracer(SimClock()) if args.trace else None)
    t0 = time.perf_counter()
    impls = all_implementations()
    with obs_session(obs):
        grid = make_executor(args.workers).map_grid(impls, [config], K40C,
                                                    cache=cache)
    elapsed = time.perf_counter() - t0
    if args.trace:
        _write_trace(args.trace, obs.tracer, obs.registry,
                     command="compare", config=str(config))
    rows = []
    for impl in impls:
        record = grid[impl.name][0]
        if not record.supported:
            rows.append([impl.paper_name, "-", "-"])
            continue
        mem = ("-" if record.peak_memory_bytes is None
               else f"{record.peak_memory_bytes / 2**20:.0f}")
        rows.append([impl.paper_name, f"{record.time_s * 1000:.2f}", mem])
    if args.json:
        records = [
            {"implementation": name,
             "time_ms": None if t == "-" else float(t),
             "memory_mb": None if m == "-" else float(m)}
            for name, t, m in rows
        ]
        store = evalcache.resolve_cache(cache)
        doc = {"config": str(config),
               "results": records,
               "elapsed_s": elapsed,
               "workers": args.workers or 1,
               "cache": None if store is None else store.stats()}
        _emit_metrics(args, obs.registry, embed=doc)
        print(json.dumps(doc, indent=2))
        return 0
    print(table(["Implementation", "Time (ms)", "Memory (MB)"], rows,
                title=f"{config}"))
    _emit_metrics(args, obs.registry)
    return 0


def cmd_ablations(_args) -> int:
    for r in run_ablations():
        print(r.render())
        print()
    return 0


def cmd_export(args) -> int:
    import os

    from .config import SWEEPS
    from .core.export import (breakdown_csv, memory_sweep_csv, metrics_csv,
                              runtime_sweep_csv, transfer_csv)
    from .core.gpu_metrics import gpu_metric_profile
    from .core.hotspot_layers import hotspot_layer_analysis
    from .core.memory_comparison import memory_sweep
    from .core.runtime_comparison import runtime_sweep
    from .core.transfer_overhead import transfer_overhead_profile

    from .core import evalcache

    cache = evalcache.DISABLED if args.no_cache else None
    os.makedirs(args.dir, exist_ok=True)
    for sweep in SWEEPS:
        runtime_sweep_csv(runtime_sweep(sweep, workers=args.workers,
                                        cache=cache),
                          os.path.join(args.dir, f"fig3_{sweep}.csv"))
        memory_sweep_csv(memory_sweep(sweep, workers=args.workers,
                                      cache=cache),
                         os.path.join(args.dir, f"fig5_{sweep}.csv"))
    breakdown_csv(hotspot_layer_analysis(),
                  os.path.join(args.dir, "fig2_breakdown.csv"))
    metrics_csv(gpu_metric_profile(workers=args.workers, cache=cache),
                os.path.join(args.dir, "fig6_metrics.csv"))
    transfer_csv(transfer_overhead_profile(),
                 os.path.join(args.dir, "fig7_transfers.csv"))
    print(f"wrote 13 CSV files to {args.dir}")
    return 0


def cmd_devices(args) -> int:
    if getattr(args, "validate", False):
        return _validate_devices()
    from .core.sensitivity import device_comparison, render_device_comparison

    print(render_device_comparison(device_comparison()))
    return 0


def _validate_devices() -> int:
    """``repro devices --validate``: schema-check every shipped profile
    and byte-diff the legacy-named ones against the hand-built specs
    (the CI ``devices-smoke`` job gates on this)."""
    import json

    from .devices import PROFILE_DIR, default_registry, selftest, \
        validate_profile

    failures = 0
    for path in sorted(PROFILE_DIR.glob("*.json")):
        with open(path) as fh:
            doc = json.load(fh)
        errors = validate_profile(doc)
        if errors:
            failures += len(errors)
            print(f"[FAIL] {path.name}")
            for error in errors:
                print(f"         {error}")
        else:
            print(f"[ ok ] {path.name}")
    problems = selftest()
    for problem in problems:
        print(f"[FAIL] selftest: {problem}")
    failures += len(problems)
    registry = default_registry()
    print(f"{len(registry)} profile(s) registered: "
          + ", ".join(registry.names()))
    for profile in sorted(registry, key=lambda p: p.name):
        print(f"  {profile.name:10s} v{profile.version}  "
              f"{profile.spec.name:24s} digest {profile.digest}  "
              f"{profile.tdp_w:5.0f} W  {profile.cost_per_hour:5.2f} $/h")
    if failures:
        print(f"validation FAILED with {failures} problem(s)")
        return 1
    print("validation passed: schemas clean, legacy specs byte-identical")
    return 0


def cmd_audit(args) -> int:
    from .core.validation import audit_all

    config = _config_from_args(args)
    ok = True
    for report in audit_all(config):
        print(report.render())
        ok = ok and report.ok
    return 0 if ok else 1


def _traffic_spec(args):
    from .serve import TrafficSpec

    return TrafficSpec(duration_s=args.duration, rate_rps=args.rate,
                       pattern=args.pattern, seed=args.seed)


def _server_config(args):
    from .gpusim.device import DEVICES
    from .serve import BatchPolicy, ServerConfig

    return ServerConfig(
        policy=BatchPolicy(max_batch=args.max_batch,
                           max_wait_s=args.max_wait_ms / 1000.0,
                           bucket=not args.no_bucket),
        queue_depth=args.queue_depth,
        timeout_s=args.timeout_ms / 1000.0,
        device=DEVICES[args.device],
        plan_cache_capacity=args.cache_capacity,
        dispatch_memo=not getattr(args, "no_dispatch_memo", False),
    )


def cmd_serve(args) -> int:
    import json
    from dataclasses import replace

    from .serve import Server, generate_trace, trace_summary

    spec = _traffic_spec(args)
    trace = generate_trace(spec)
    config = _server_config(args)
    if args.slo:
        from .obs.slo import DEFAULT_RULES, SLOPolicy, load_rules

        rules = DEFAULT_RULES if args.slo == "-" else load_rules(args.slo)
        config = replace(config, slo=SLOPolicy(rules=rules))
    tel_config = _telemetry_config(args)
    if tel_config is not None:
        config = replace(config, telemetry=tel_config)
    server = Server(config)
    if args.trace:
        server.enable_tracing(sample=getattr(args, "trace_sample", 1))
    report = server.run(trace)
    slo_ok = server.slo_report is None or server.slo_report.passed
    if args.trace:
        _write_trace(args.trace, server.obs.tracer, server.obs.registry,
                     command="serve", seed=spec.seed)
    _emit_telemetry(args, server.telemetry)
    if args.json:
        doc = {"traffic": {"arrivals": len(trace),
                           "duration_s": spec.duration_s,
                           "pattern": spec.pattern,
                           "seed": spec.seed},
               "stats": report.to_dict()}
        if server.slo_report is not None:
            doc["slo"] = server.slo_report.to_dict()
        _emit_metrics(args, server.obs.registry, embed=doc)
        print(json.dumps(doc, indent=2))
        return 0 if slo_ok else 1
    print(trace_summary(trace, spec))
    print()
    print(report.render())
    if server.slo_report is not None:
        print()
        print(server.slo_report.render())
    _emit_metrics(args, server.obs.registry)
    return 0 if slo_ok else 1


def cmd_loadgen(args) -> int:
    from .serve import BatchPolicy, Server, generate_trace, trace_summary
    from dataclasses import replace

    spec = _traffic_spec(args)
    trace = generate_trace(spec)
    print(trace_summary(trace, spec))

    config = _server_config(args)
    batched = Server(config).run(trace)
    print("\n== dynamic batching ==")
    print(batched.render())

    single = Server(replace(config, policy=BatchPolicy(
        max_batch=1, max_wait_s=0.0))).run(trace)
    print("\n== forced batch=1 ==")
    print(single.render())

    speedup = (batched.throughput_rps / single.throughput_rps
               if single.throughput_rps else float("inf"))
    print(f"\ndynamic batching throughput speedup: x{speedup:.2f}")
    return 0


def _cmd_chaos_cluster(args) -> int:
    """``chaos --cluster``: fleet chaos with the self-healing plane.

    Three runs — healthy baseline, chaos, chaos re-run — then three
    gates: the same-seed chaos digest is byte-identical, the
    self-healing scorecard reconciles (every crash has a restart
    scheduled or denied; every hedge resolved as a win or a cancel),
    and the post-recovery tail latency is back at the pre-fault
    baseline.
    """
    import hashlib
    import json

    from .cluster import Cluster, ClusterConfig, HealthConfig
    from .faults import named_fleet_plan
    from .obs.hist import percentile
    from .serve import generate_trace, trace_summary

    if args.quick:
        args.duration = 2.0
        args.rate = 3000.0
    spec = _traffic_spec(args)
    trace = generate_trace(spec)
    plan = named_fleet_plan(args.fleet_plan, duration_s=spec.duration_s,
                            replicas=args.replicas)
    hedge_s = (args.hedge_after_ms / 1000.0
               if args.hedge_after_ms else None)
    health = HealthConfig(hedge_after_s=hedge_s)

    def run_once(with_faults):
        config = ClusterConfig(
            replicas=args.replicas, policy=args.policy,
            server=_server_config(args), seed=spec.seed, health=health,
            fleet_fault_plan=plan if with_faults else None)
        cluster = Cluster(config)
        report = cluster.run(trace)
        completions = sorted(
            (c.finish_s, c.latency_s)
            for r in cluster.replicas
            for c in r.server.stats.completions)
        return report, completions

    def digest(report):
        blob = json.dumps(report.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    baseline, _ = run_once(False)
    chaos, completions = run_once(True)
    rerun, _ = run_once(True)
    deterministic = digest(chaos) == digest(rerun)

    # Recovery: tail latency over the run's last fifth must be back at
    # (within 50% of) the pre-fault level.  Both windows come from the
    # chaos run itself, so a fleet that never heals cannot pass by
    # having been fast before the fault.
    fault_t = plan.first_event_s()
    tail_start = spec.duration_s * 0.8
    pre = sorted(lat for t, lat in completions
                 if fault_t is not None and t < fault_t)
    post = sorted(lat for t, lat in completions if t >= tail_start)
    pre_p99 = percentile(pre, 99) * 1000 if pre else None
    post_p99 = percentile(post, 99) * 1000 if post else None
    recovered = (True if pre_p99 is None or post_p99 is None
                 else post_p99 <= pre_p99 * 1.5)

    score = chaos.health or {}
    reconciled = (
        score.get("crashes", 0) == (score.get("restarts", 0)
                                    + score.get("restarts_pending", 0)
                                    + score.get("restarts_denied", 0))
        and score.get("hedges_issued", 0) == (score.get("hedge_wins", 0)
                                              + score.get("hedge_cancels", 0)))
    ratio = (chaos.completed / baseline.completed
             if baseline.completed else 0.0)
    ok = deterministic and reconciled and recovered

    if args.json:
        doc = {
            "traffic": {"arrivals": len(trace),
                        "duration_s": spec.duration_s,
                        "pattern": spec.pattern,
                        "seed": spec.seed},
            "fleet_plan": {"name": plan.name,
                           "description": plan.describe(),
                           "replicas": args.replicas,
                           "policy": args.policy,
                           "hedge_after_ms": args.hedge_after_ms},
            "fault_free": baseline.to_dict(),
            "chaos": chaos.to_dict(),
            "completion_ratio": ratio,
            "recovery": {"fault_at_s": fault_t,
                         "pre_fault_p99_ms": pre_p99,
                         "post_recovery_p99_ms": post_p99,
                         "recovered": recovered},
            "scorecard_reconciled": reconciled,
            "deterministic": deterministic,
            "digest": digest(chaos),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if ok else 1

    print(trace_summary(trace, spec))
    print(f"\nfleet plan: {plan.describe()}")
    print("\n== fault-free fleet ==")
    print(baseline.render())
    print(f"\n== under {plan.name!r} ==")
    print(chaos.render())
    print(f"\ncompletion ratio vs fault-free: {ratio:.3f}")
    if fault_t is not None and pre_p99 is not None and post_p99 is not None:
        print(f"p99 before fault @{fault_t:.2f}s: {pre_p99:.2f} ms; "
              f"post-recovery (last fifth): {post_p99:.2f} ms -> "
              f"{'recovered' if recovered else 'NOT RECOVERED'}")
    print(f"scorecard reconciled: {reconciled}")
    print(f"deterministic re-run: {deterministic}")
    return 0 if ok else 1


def cmd_chaos(args) -> int:
    import hashlib
    import json

    from .faults import named_plan
    from .serve import Server, generate_trace, trace_summary

    if getattr(args, "cluster", False):
        return _cmd_chaos_cluster(args)
    if args.quick:
        args.duration = 1.0
        args.rate = 1500.0
    spec = _traffic_spec(args)
    trace = generate_trace(spec)
    plan = named_plan(args.fault_plan, duration_s=spec.duration_s)
    config = _server_config(args)
    fault_seed = args.fault_seed if args.fault_seed is not None else spec.seed

    def run_once(with_faults, trace_path=None):
        server = Server(config, fault_plan=plan if with_faults else None,
                        fault_seed=fault_seed)
        if trace_path:
            server.enable_tracing(sample=getattr(args, "trace_sample", 1))
        report = server.run(trace)
        if trace_path:
            _write_trace(trace_path, server.obs.tracer, server.obs.registry,
                         command="chaos", seed=spec.seed,
                         fault_plan=plan.name)
        return report, server

    def digest(report):
        blob = json.dumps(report.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    baseline, _ = run_once(False)
    # Only the first chaos run is traced; the untraced re-run doubles
    # as a check that tracing never changes the simulated outcome.
    chaos, chaos_server = run_once(True, trace_path=args.trace)
    rerun, _ = run_once(True)
    deterministic = digest(chaos) == digest(rerun)
    ratio = (chaos.completed / baseline.completed
             if baseline.completed else 0.0)

    if args.json:
        doc = {
            "traffic": {"arrivals": len(trace),
                        "duration_s": spec.duration_s,
                        "pattern": spec.pattern,
                        "seed": spec.seed},
            "fault_plan": {"name": plan.name,
                           "description": plan.describe(),
                           "seed": fault_seed},
            "fault_free": baseline.to_dict(),
            "chaos": chaos.to_dict(),
            "completion_ratio": ratio,
            "unhandled_errors": chaos.unhandled_errors,
            "deterministic": deterministic,
            "digest": digest(chaos),
        }
        _emit_metrics(args, chaos_server.obs.registry, embed=doc)
        print(json.dumps(doc, indent=2))
    else:
        print(trace_summary(trace, spec))
        print(f"\nfault plan: {plan.describe()}")
        print("\n== fault-free ==")
        print(baseline.render())
        print(f"\n== under {plan.name!r} ==")
        print(chaos.render())
        print(f"\ncompletion ratio vs fault-free: {ratio:.3f}")
        print(f"deterministic re-run: {deterministic}")
        _emit_metrics(args, chaos_server.obs.registry)
    return 0 if deterministic else 1


def cmd_cluster(args) -> int:
    import json

    from .cluster import AutoscalePolicy, Cluster, ClusterConfig, HealthConfig
    from .faults import (FLEET_PLAN_NAMES, PLAN_NAMES, named_fleet_plan,
                         named_plan)
    from .obs.slo import DEFAULT_RULES, SLOPolicy, load_rules
    from .serve import generate_trace, trace_summary

    if args.quick:
        args.duration = 1.0
        args.rate = 4000.0
    devices = ()
    if getattr(args, "fleet", None):
        from .devices.plan import mix_slots, parse_fleet

        devices = mix_slots(parse_fleet(args.fleet))
        args.replicas = len(devices)
    spec = _traffic_spec(args)
    trace = generate_trace(spec)

    slo = None
    if args.slo:
        rules = DEFAULT_RULES if args.slo == "-" else load_rules(args.slo)
        slo = SLOPolicy(rules=rules, window_s=args.slo_window_ms / 1000.0)
    autoscale = None
    if args.autoscale:
        if slo is None:
            raise ValueError("--autoscale needs --slo (the autoscaler "
                             "consumes SLO violation/recovery edges)")
        autoscale = AutoscalePolicy(min_replicas=args.min_replicas,
                                    max_replicas=args.max_replicas,
                                    cooldown_s=args.cooldown_ms / 1000.0)
    fault_plans = {}
    default_plan = None
    fleet_plan_name = args.fleet_plan
    if args.fault_plan:
        if (args.fault_plan in FLEET_PLAN_NAMES
                and args.fault_plan not in PLAN_NAMES):
            # A fleet-level plan name (crash / flapping / domain-outage
            # / fleet-chaos) given through --fault-plan: route it to the
            # fleet fault plane instead of per-replica injectors.
            if fleet_plan_name is None:
                fleet_plan_name = args.fault_plan
        else:
            plan = named_plan(args.fault_plan, duration_s=spec.duration_s)
            if args.fault_replica is not None:
                fault_plans = {i: plan for i in args.fault_replica}
            else:
                default_plan = plan
    kills = []
    if args.kill_replica is not None:
        if (args.kill_at is None
                or len(args.kill_at) != len(args.kill_replica)):
            raise ValueError("each --kill-replica needs a matching "
                             "--kill-at SECONDS")
        kills = list(zip(args.kill_replica, args.kill_at))

    fleet_plan = None
    if fleet_plan_name:
        fleet_plan = named_fleet_plan(fleet_plan_name,
                                      duration_s=spec.duration_s,
                                      replicas=args.replicas)
    health = None
    if args.health or fleet_plan is not None or args.hedge_after_ms:
        health = HealthConfig(
            probe_interval_s=args.probe_interval_ms / 1000.0,
            max_restarts=args.max_restarts,
            hedge_after_s=(args.hedge_after_ms / 1000.0
                           if args.hedge_after_ms else None),
            retry_budget_ratio=args.retry_budget)

    config = ClusterConfig(
        replicas=args.replicas, policy=args.policy,
        server=_server_config(args), seed=spec.seed, devices=devices,
        slo=slo, autoscale=autoscale, window_s=args.window_ms / 1000.0,
        fault_plans=fault_plans, default_fault_plan=default_plan,
        kills=kills, health=health, fleet_fault_plan=fleet_plan,
        telemetry=_telemetry_config(args))
    cluster = Cluster(config)
    if args.trace:
        cluster.enable_tracing(sample=getattr(args, "trace_sample", 1))
    report = cluster.run(trace)

    if args.trace:
        from .obs.export import (write_cluster_chrome_trace,
                                 write_cluster_jsonl)

        if args.trace.endswith(".jsonl"):
            n = write_cluster_jsonl(args.trace, cluster.obs.tracer,
                                    cluster.replica_tracers)
            print(f"wrote {n} trace records to {args.trace}",
                  file=sys.stderr)
        else:
            write_cluster_chrome_trace(
                args.trace, cluster.obs.tracer, cluster.replica_tracers,
                cluster.obs.registry, command="cluster", seed=spec.seed,
                policy=config.policy, replicas=config.replicas)
            print(f"wrote fleet trace to {args.trace}", file=sys.stderr)
    replica_registries = [(r.name, r.server.obs.registry)
                          for r in cluster.replicas]
    if args.metrics and args.metrics != "-":
        from .obs.export import write_cluster_metrics

        write_cluster_metrics(args.metrics, cluster.obs.registry,
                              replica_registries)
        print(f"wrote fleet metrics snapshot to {args.metrics}",
              file=sys.stderr)
    if cluster.telemetry is not None:
        _emit_telemetry(args, cluster.telemetry.rollups,
                        manager=cluster.telemetry.alerts,
                        fleet=cluster.telemetry)

    slo_ok = not report.slo_in_violation  # None (no SLO) is ok
    if args.json:
        doc = {"traffic": {"arrivals": len(trace),
                           "duration_s": spec.duration_s,
                           "pattern": spec.pattern,
                           "seed": spec.seed},
               "cluster": report.to_dict()}
        if args.metrics == "-":
            from .obs.export import cluster_metrics_doc

            doc["metrics"] = cluster_metrics_doc(cluster.obs.registry,
                                                 replica_registries)
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0 if slo_ok else 1
    print(trace_summary(trace, spec))
    if default_plan is not None or fault_plans:
        targets = ("all replicas" if default_plan is not None else
                   "replica(s) " + ", ".join(map(str, args.fault_replica)))
        print(f"fault plan: {args.fault_plan} on {targets}")
    if kills:
        print("kill schedule: " + ", ".join(
            f"replica {i} @ {t:.3f}s" for i, t in sorted(kills)))
    if fleet_plan is not None:
        print(f"fleet plan: {fleet_plan.describe()}")
    print()
    print(report.render())
    if args.metrics == "-":
        from .obs.export import render_metrics

        print()
        print(render_metrics(cluster.obs.registry))
    return 0 if slo_ok else 1


def cmd_plan(args) -> int:
    import json

    from .devices import plan_capacity
    from .obs.slo import DEFAULT_RULES, load_rules

    rules = (DEFAULT_RULES if not args.slo or args.slo == "-"
             else load_rules(args.slo))
    if args.quick:
        args.duration = 1.0
        args.rate = 800.0
    plan = plan_capacity(args.fleet, rules,
                         workload=args.workload,
                         duration_s=args.duration, rate_rps=args.rate,
                         pattern=args.pattern, policy=args.policy,
                         seed=args.seed)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
    else:
        print(plan.render())
    return 0 if plan.best is not None else 1


def cmd_trace(args) -> int:
    from .faults import named_plan
    from .serve import Server, generate_trace, trace_summary

    spec = _traffic_spec(args)
    trace = generate_trace(spec)
    plan = (named_plan(args.fault_plan, duration_s=spec.duration_s)
            if args.fault_plan else None)
    server = Server(_server_config(args), fault_plan=plan,
                    fault_seed=spec.seed)
    tracer = server.enable_tracing(sample=getattr(args, "trace_sample", 1))
    report = server.run(trace)
    print(trace_summary(trace, spec))
    if plan is not None:
        print(f"\nfault plan: {plan.describe()}")
    print()
    print(report.render())
    _write_trace(args.out, tracer, server.obs.registry,
                 command="trace", seed=spec.seed,
                 fault_plan=plan.name if plan else None)
    print(f"trace: {tracer.span_count()} spans -> {args.out}")
    _emit_metrics(args, server.obs.registry)
    return 0


def _host_hotspots(top: int) -> str:
    """cProfile one reference serving run (dynamic batching + forced
    batch-1 over the same trace) and return the hottest-function table.

    This profiles *host* time spent simulating — the quantity the
    dispatch-memo fast path optimises — not simulated time; the run's
    simulated report is identical to an unprofiled one.
    """
    import cProfile
    import io
    import pstats
    from dataclasses import replace

    from .serve import (BatchPolicy, Server, ServerConfig, TrafficSpec,
                        generate_trace)

    spec = TrafficSpec(duration_s=3.0, rate_rps=6000)
    trace = generate_trace(spec)
    config = ServerConfig()
    # Warm the process-wide advisor/evalcache models so the table shows
    # the steady-state serving loop, not one-time model evaluation.
    Server(config).run(trace)
    profile = cProfile.Profile()
    profile.enable()
    Server(config).run(trace)
    Server(replace(config, policy=BatchPolicy(max_batch=1,
                                              max_wait_s=0.0))).run(trace)
    profile.disable()
    out = io.StringIO()
    stats = pstats.Stats(profile, stream=out)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    return out.getvalue()


def cmd_analyze(args) -> int:
    import json

    from .obs.analyze import analyze_run, load_jsonl
    from .obs.diff import diff_traces

    if args.hotspots_host:
        print(_host_hotspots(args.top))
        return 0
    if args.trace is None:
        raise ValueError("analyze needs a JSONL trace path "
                         "(or --hotspots-host to profile the host)")
    try:
        analysis = analyze_run(load_jsonl(args.trace))
        diff = None
        if args.baseline:
            diff = diff_traces(load_jsonl(args.baseline),
                               load_jsonl(args.trace))
    except OSError as exc:
        raise ValueError(str(exc)) from exc
    if args.json:
        doc = analysis.to_dict() if diff is None else \
            {"analysis": analysis.to_dict(), "diff": diff.to_dict()}
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(analysis.render(top=args.top))
    if diff is not None:
        print()
        print(diff.render(top=args.top))
    return 0


def cmd_slo(args) -> int:
    import json

    from .obs.export import load_metrics_snapshot
    from .obs.slo import DEFAULT_RULES, evaluate_slo, load_rules

    try:
        rules = load_rules(args.rules) if args.rules else DEFAULT_RULES
        snapshot = load_metrics_snapshot(args.metrics)
    except OSError as exc:
        raise ValueError(str(exc)) from exc
    report = evaluate_slo(snapshot, rules, source=args.metrics)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.passed else 1


def cmd_regression(args) -> int:
    import json

    from .core.regression import (capture_headlines, compare, load_baseline,
                                  save_baseline)

    if args.save:
        head = save_baseline(args.baseline)
        print(f"wrote {len(head)} headline quantities to {args.baseline}")
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except OSError as exc:
        raise ValueError(str(exc)) from exc
    current = capture_headlines()
    drifts = compare(baseline, current, rel_tolerance=args.tolerance)
    if args.json:
        print(json.dumps(
            {"baseline": args.baseline, "tolerance": args.tolerance,
             "quantities": len(current), "passed": not drifts,
             "drifts": [{"key": d.key, "baseline": d.baseline,
                         "current": d.current, "relative": d.relative}
                        for d in drifts]},
            indent=2, sort_keys=True))
    elif drifts:
        print(table(["quantity", "baseline", "current", "drift"],
                    [[d.key, f"{d.baseline:g}", f"{d.current:g}",
                      f"{d.relative * 100:.1f}%"] for d in drifts],
                    title=f"calibration drift beyond "
                          f"{args.tolerance:.0%} tolerance"))
    else:
        print(f"{len(current)} headline quantities within "
              f"{args.tolerance:.0%} of {args.baseline}")
    return 1 if drifts else 0


def cmd_report(args) -> int:
    from .core.full_report import write_report

    write_report(args.path, include_extensions=not args.no_extensions)
    print(f"wrote {args.path}")
    return 0


def _add_obs_args(p) -> None:
    p.add_argument("--trace", metavar="PATH", default=None,
                   help="record the run's span tree to PATH as "
                        "Chrome-trace/Perfetto JSON (a .jsonl extension "
                        "selects the JSONL event log)")
    p.add_argument("--metrics", metavar="PATH", nargs="?", const="-",
                   default=None,
                   help="emit the end-of-run metrics snapshot: to PATH as "
                        "JSON, printed (or embedded under --json) when "
                        "PATH is omitted")
    p.add_argument("--trace-sample", type=int, default=1, metavar="N",
                   help="with --trace, keep only 1 in N serve.batch span "
                        "trees (deterministic; metrics and the report "
                        "stay exact; default 1 = full tracing)")


def _add_telemetry_args(p, fleet: bool = False) -> None:
    extras = (", burn-rate alerts and flight recorders" if fleet else "")
    p.add_argument("--telemetry", action="store_true",
                   help=f"attach the live-telemetry plane (windowed "
                        f"rollups{extras}); implied by the telemetry "
                        f"output flags below; the report itself is "
                        f"byte-identical either way")
    p.add_argument("--telemetry-window-ms", type=float, default=1000.0,
                   metavar="MS",
                   help="rollup window width (default 1000 ms)")
    p.add_argument("--window-log", metavar="PATH", default=None,
                   help="write the JSONL window log (implies --telemetry)")
    p.add_argument("--openmetrics", metavar="PATH", default=None,
                   help="write an OpenMetrics-style text snapshot "
                        "(implies --telemetry)")
    p.add_argument("--dashboard", action="store_true",
                   help="render the terminal telemetry dashboard after "
                        "the run (implies --telemetry)")
    if fleet:
        p.add_argument("--alert-log", metavar="PATH", default=None,
                       help="write the JSONL burn-rate alert event "
                            "stream (implies --telemetry)")
        p.add_argument("--incident-dir", metavar="DIR", default=None,
                       help="dump flight-recorder incident bundles into "
                            "DIR (implies --telemetry)")
        p.add_argument("--no-alerts", action="store_true",
                       help="with --telemetry, skip burn-rate alert "
                            "evaluation")


def _telemetry_config(args):
    """Resolve the telemetry flags into a TelemetryConfig (or None)."""
    wants = (args.telemetry or args.window_log or args.openmetrics
             or args.dashboard or getattr(args, "alert_log", None)
             or getattr(args, "incident_dir", None))
    if not wants:
        return None
    from .obs.timeseries import TelemetryConfig

    return TelemetryConfig(window_s=args.telemetry_window_ms / 1000.0,
                           alerts=not getattr(args, "no_alerts", False))


def _emit_telemetry(args, rollups, manager=None, fleet=None) -> None:
    """Write the requested telemetry artifacts after a run."""
    if rollups is None:
        return
    from .obs.timeseries import write_openmetrics, write_window_log

    if args.window_log:
        n = write_window_log(args.window_log, rollups)
        print(f"wrote {n} window-log line(s) to {args.window_log}",
              file=sys.stderr)
    if args.openmetrics:
        write_openmetrics(args.openmetrics, rollups)
        print(f"wrote OpenMetrics snapshot to {args.openmetrics}",
              file=sys.stderr)
    if manager is not None and getattr(args, "alert_log", None):
        from .obs.alerts import write_alert_log

        n = write_alert_log(args.alert_log, manager)
        print(f"wrote {n} alert-log line(s) to {args.alert_log}",
              file=sys.stderr)
    if fleet is not None and getattr(args, "incident_dir", None):
        paths = fleet.write_incidents(args.incident_dir)
        print(f"wrote {len(paths)} incident bundle(s) to "
              f"{args.incident_dir}", file=sys.stderr)
    if args.dashboard:
        from .obs.dashboard import render_dashboard_live

        print()
        print(render_dashboard_live(rollups), end="")


def cmd_dashboard(args) -> int:
    from .obs.dashboard import render_dashboard_from_log

    print(render_dashboard_from_log(args.window_log), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Performance Analysis of GPU-based "
                    "Convolutional Neural Networks' (ICPP 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments").set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="regenerate experiments")
    p_run.add_argument("ids", nargs="+", help="experiment ids, or 'all'")
    p_run.set_defaults(fn=cmd_run)

    for name, fn in (("advise", cmd_advise), ("compare", cmd_compare)):
        p = sub.add_parser(name)
        p.add_argument("b", type=int, help="mini-batch size")
        p.add_argument("i", type=int, help="input size")
        p.add_argument("f", type=int, help="filter count")
        p.add_argument("k", type=int, help="kernel size")
        p.add_argument("s", type=int, help="stride")
        p.add_argument("c", type=int, nargs="?", default=3,
                       help="input channels (default 3)")
        if name == "advise":
            p.add_argument("--memory", type=int, default=None,
                           help="device memory budget in MB")
        if name == "compare":
            p.add_argument("--json", action="store_true",
                           help="machine-readable output")
            p.add_argument("--workers", type=int, default=None,
                           help="parallel evaluation workers (default serial)")
            p.add_argument("--no-cache", action="store_true",
                           help="bypass the shared evaluation cache")
            _add_obs_args(p)
        p.set_defaults(fn=fn)

    sub.add_parser("ablations",
                   help="run design-choice ablations").set_defaults(
        fn=cmd_ablations)

    p_export = sub.add_parser("export", help="write figure data as CSV")
    p_export.add_argument("dir", help="output directory")
    p_export.add_argument("--workers", type=int, default=None,
                          help="parallel evaluation workers (default serial)")
    p_export.add_argument("--no-cache", action="store_true",
                          help="bypass the shared evaluation cache")
    p_export.set_defaults(fn=cmd_export)

    p_devices = sub.add_parser(
        "devices", help="headline results across modelled GPUs")
    p_devices.add_argument("--validate", action="store_true",
                           help="schema-validate the shipped device "
                                "profiles and byte-diff the legacy-named "
                                "ones against the hand-built specs "
                                "(CI gate)")
    p_devices.set_defaults(fn=cmd_devices)

    p_audit = sub.add_parser(
        "audit", help="run the consistency audits on every implementation")
    for field, hint in (("b", "mini-batch size"), ("i", "input size"),
                        ("f", "filter count"), ("k", "kernel size"),
                        ("s", "stride")):
        p_audit.add_argument(field, type=int, help=hint)
    p_audit.add_argument("c", type=int, nargs="?", default=3,
                         help="input channels (default 3)")
    p_audit.set_defaults(fn=cmd_audit)

    p_report = sub.add_parser(
        "report", help="regenerate the full study as one markdown file")
    p_report.add_argument("path", help="output markdown path")
    p_report.add_argument("--no-extensions", action="store_true",
                          help="paper artifacts only")
    p_report.set_defaults(fn=cmd_report)

    def add_traffic_args(p) -> None:
        from .gpusim.device import DEVICES
        from .rng import DEFAULT_SEED

        p.add_argument("--duration", type=float, default=10.0,
                       help="simulated seconds of traffic (default 10)")
        p.add_argument("--rate", type=float, default=2000.0,
                       help="mean offered load in req/s (default 2000)")
        p.add_argument("--pattern", choices=("poisson", "bursty"),
                       default="poisson", help="arrival process")
        p.add_argument("--seed", type=int, default=DEFAULT_SEED,
                       help="trace seed (runs are deterministic per seed)")
        p.add_argument("--max-batch", type=int, default=64,
                       help="dynamic batcher size cap (default 64)")
        p.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="batching latency guard (default 2 ms)")
        p.add_argument("--no-bucket", action="store_true",
                       help="disable power-of-two batch padding")
        p.add_argument("--queue-depth", type=int, default=512,
                       help="admission queue bound (default 512)")
        p.add_argument("--timeout-ms", type=float, default=250.0,
                       help="queueing timeout before shedding (default 250 ms)")
        p.add_argument("--cache-capacity", type=int, default=128,
                       help="plan cache entries (default 128)")
        p.add_argument("--no-dispatch-memo", action="store_true",
                       help="disable the dispatch memo fast path "
                            "(reference scheduler; same-seed reports are "
                            "byte-identical either way, just slower)")
        p.add_argument("--device", choices=sorted(DEVICES),
                       default="Tesla K40c", help="modelled GPU")

    p_serve = sub.add_parser(
        "serve", help="run simulated inference traffic end-to-end")
    add_traffic_args(p_serve)
    p_serve.add_argument("--json", action="store_true",
                         help="machine-readable stats output")
    p_serve.add_argument("--slo", metavar="RULES", nargs="?", const="-",
                         default=None,
                         help="attach the simulated-time SLO monitor: "
                              "rules from a JSON file, or the default "
                              "rule set when RULES is omitted (a failing "
                              "rule makes the command exit non-zero)")
    _add_obs_args(p_serve)
    _add_telemetry_args(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    from .faults import PLAN_NAMES

    p_chaos = sub.add_parser(
        "chaos", help="run traffic under a named fault plan and report "
                      "the resilience stats")
    add_traffic_args(p_chaos)
    p_chaos.add_argument("--fault-plan", choices=PLAN_NAMES, default="chaos",
                         help="named fault plan (default 'chaos')")
    p_chaos.add_argument("--fault-seed", type=int, default=None,
                         help="injector seed (default: the trace seed)")
    from .cluster import POLICIES
    from .faults import FLEET_PLAN_NAMES

    p_chaos.add_argument("--cluster", action="store_true",
                         help="fleet chaos: inject --fleet-plan into a "
                              "replicated fleet with the self-healing "
                              "plane attached, and gate on recovery")
    p_chaos.add_argument("--fleet-plan", choices=FLEET_PLAN_NAMES,
                         default="fleet-chaos",
                         help="named fleet fault plan for --cluster "
                              "(default 'fleet-chaos')")
    p_chaos.add_argument("--replicas", type=int, default=4,
                         help="fleet size for --cluster (default 4)")
    p_chaos.add_argument("--policy", choices=POLICIES,
                         default="round-robin",
                         help="routing policy for --cluster (default "
                              "round-robin)")
    p_chaos.add_argument("--hedge-after-ms", type=float, default=20.0,
                         help="hedge queued requests older than this in "
                              "--cluster mode; 0 disables (default 20)")
    p_chaos.add_argument("--json", action="store_true",
                         help="machine-readable stats output")
    p_chaos.add_argument("--quick", action="store_true",
                         help="1-second smoke run (CI gate)")
    _add_obs_args(p_chaos)
    p_chaos.set_defaults(fn=cmd_chaos)

    p_cluster = sub.add_parser(
        "cluster", help="serve traffic across a replicated fleet with "
                        "pluggable routing and SLO-driven autoscaling")
    add_traffic_args(p_cluster)
    p_cluster.add_argument("--replicas", type=int, default=4,
                           help="initial fleet size (default 4)")
    p_cluster.add_argument("--fleet", metavar="SPEC", default=None,
                           help="heterogeneous fleet as device:count "
                                "pairs, e.g. 'k40c:4,maxwell:2' (device "
                                "profile slugs from 'repro devices "
                                "--validate'); overrides --replicas and "
                                "--device")
    p_cluster.add_argument("--policy", choices=POLICIES,
                           default="round-robin",
                           help="request routing policy (default "
                                "round-robin)")
    p_cluster.add_argument("--slo", metavar="RULES", nargs="?", const="-",
                           default=None,
                           help="attach the fleet SLO monitor (sliding-"
                                "window evaluation): rules from a JSON "
                                "file, or the default rule set when RULES "
                                "is omitted; a rule still in violation at "
                                "the end exits non-zero")
    p_cluster.add_argument("--slo-window-ms", type=float, default=50.0,
                           help="SLO polling cadence (default 50 ms)")
    p_cluster.add_argument("--window-ms", type=float, default=1000.0,
                           help="sliding window the fleet SLO snapshot "
                                "summarises (default 1000 ms)")
    p_cluster.add_argument("--autoscale", action="store_true",
                           help="scale the fleet on SLO violation/recovery "
                                "edges (needs --slo)")
    p_cluster.add_argument("--min-replicas", type=int, default=1,
                           help="autoscaler floor (default 1)")
    p_cluster.add_argument("--max-replicas", type=int, default=8,
                           help="autoscaler ceiling (default 8)")
    p_cluster.add_argument("--cooldown-ms", type=float, default=200.0,
                           help="min time between scaling actions "
                                "(default 200 ms)")
    p_cluster.add_argument("--fault-plan",
                           choices=sorted(set(PLAN_NAMES)
                                          | set(FLEET_PLAN_NAMES)),
                           default=None,
                           help="inject a named fault plan; fleet-level "
                                "names (crash, flapping, domain-outage, "
                                "fleet-chaos) route to the fleet fault "
                                "plane and imply --health")
    p_cluster.add_argument("--fault-replica", type=int, action="append",
                           default=None, metavar="IDX",
                           help="restrict --fault-plan to this replica "
                                "index (repeatable; default: all replicas)")
    p_cluster.add_argument("--kill-replica", type=int, default=None,
                           action="append", metavar="IDX",
                           help="kill this replica mid-run (with "
                                "--kill-at; repeatable — pairs match "
                                "positionally)")
    p_cluster.add_argument("--kill-at", type=float, default=None,
                           action="append", metavar="SECONDS",
                           help="simulated time of the matching "
                                "--kill-replica kill (repeatable)")
    p_cluster.add_argument("--health", action="store_true",
                           help="attach the self-healing plane: heartbeat "
                                "probes, failure detection, supervisor "
                                "restarts, retry budgets")
    p_cluster.add_argument("--fleet-plan", choices=FLEET_PLAN_NAMES,
                           default=None,
                           help="inject a named fleet fault plan — "
                                "crashes, degrades, flapping, domain "
                                "outages (implies --health)")
    p_cluster.add_argument("--hedge-after-ms", type=float, default=None,
                           help="hedge queued requests older than this to "
                                "a second replica (implies --health)")
    p_cluster.add_argument("--probe-interval-ms", type=float, default=20.0,
                           help="heartbeat probe cadence (default 20 ms)")
    p_cluster.add_argument("--max-restarts", type=int, default=2,
                           help="supervisor restarts per slot (default 2)")
    p_cluster.add_argument("--retry-budget", type=float, default=0.1,
                           help="per-tenant retry budget as a fraction of "
                                "offered traffic (default 0.1)")
    p_cluster.add_argument("--json", action="store_true",
                           help="machine-readable report output")
    p_cluster.add_argument("--quick", action="store_true",
                           help="1-second smoke run (CI gate)")
    _add_obs_args(p_cluster)
    _add_telemetry_args(p_cluster, fleet=True)
    p_cluster.set_defaults(fn=cmd_cluster)

    p_dash = sub.add_parser(
        "dashboard", help="render the terminal telemetry dashboard from "
                          "a recorded window log")
    p_dash.add_argument("window_log", metavar="WINDOW_LOG",
                        help="JSONL window log written by serve/cluster "
                             "--window-log")
    p_dash.set_defaults(fn=cmd_dashboard)

    from .devices.plan import WORKLOADS
    from .rng import DEFAULT_SEED as _PLAN_SEED

    p_plan = sub.add_parser(
        "plan", help="capacity-plan a heterogeneous fleet: sweep every "
                     "device mix within the ceilings against an SLO and "
                     "rank the passing mixes cheapest first")
    p_plan.add_argument("--fleet", required=True, metavar="SPEC",
                        help="device ceilings as slug:count pairs, e.g. "
                             "'k40c:4,maxwell:2' — every mix up to the "
                             "ceilings is simulated")
    p_plan.add_argument("--workload", choices=sorted(WORKLOADS),
                        default="mixed",
                        help="traffic model mix (default 'mixed')")
    p_plan.add_argument("--slo", metavar="RULES", nargs="?", const="-",
                        default=None,
                        help="SLO rules from a JSON file, or the default "
                             "rule set when RULES is omitted; exits "
                             "non-zero when no mix passes")
    p_plan.add_argument("--duration", type=float, default=5.0,
                        help="simulated seconds of traffic (default 5)")
    p_plan.add_argument("--rate", type=float, default=500.0,
                        help="mean offered load in req/s (default 500)")
    p_plan.add_argument("--pattern", choices=("poisson", "bursty"),
                        default="poisson", help="arrival process")
    p_plan.add_argument("--seed", type=int, default=_PLAN_SEED,
                        help="trace seed (sweeps are deterministic "
                             "per seed)")
    p_plan.add_argument("--policy", choices=POLICIES,
                        default="device-affinity",
                        help="routing policy every mix is simulated "
                             "under (default device-affinity)")
    p_plan.add_argument("--json", action="store_true",
                        help="machine-readable ranked output")
    p_plan.add_argument("--quick", action="store_true",
                        help="1-second smoke sweep (CI gate)")
    p_plan.set_defaults(fn=cmd_plan)

    p_trace = sub.add_parser(
        "trace", help="run one traced serving run and export the span "
                      "timeline")
    add_traffic_args(p_trace)
    p_trace.add_argument("--out", default="serving_trace.json",
                         help="trace output path (default "
                              "serving_trace.json; a .jsonl extension "
                              "selects the JSONL event log)")
    p_trace.add_argument("--fault-plan", choices=PLAN_NAMES, default=None,
                         help="inject a named fault plan into the traced run")
    p_trace.add_argument("--metrics", metavar="PATH", nargs="?", const="-",
                         default=None,
                         help="also emit the metrics snapshot (to PATH, or "
                              "printed when PATH is omitted)")
    p_trace.add_argument("--trace-sample", type=int, default=1, metavar="N",
                         help="keep only 1 in N serve.batch span trees "
                              "(deterministic; the report stays exact)")
    # A traced second of traffic is plenty to read; heavier runs are
    # one --duration/--rate away.
    p_trace.set_defaults(fn=cmd_trace, duration=1.0, rate=1000.0)

    p_analyze = sub.add_parser(
        "analyze", help="offline trace analytics: critical path, hotspot "
                        "table, and (with --baseline) regression "
                        "attribution between two runs")
    p_analyze.add_argument("trace", nargs="?", default=None,
                           help="JSONL event log to analyze "
                                "(see 'trace --out run.jsonl')")
    p_analyze.add_argument("--hotspots-host", action="store_true",
                           help="profile the simulator itself: cProfile a "
                                "reference serving run on this host and "
                                "print the hottest functions (simulated "
                                "results are unaffected)")
    p_analyze.add_argument("--baseline", metavar="PATH", default=None,
                           help="second JSONL log to diff against "
                                "(baseline -> trace)")
    p_analyze.add_argument("--top", type=int, default=10,
                           help="rows per table (default 10)")
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable output")
    p_analyze.set_defaults(fn=cmd_analyze)

    p_slo = sub.add_parser(
        "slo", help="evaluate SLO rules against a saved metrics snapshot "
                    "(exits non-zero on a failing rule)")
    p_slo.add_argument("metrics", help="metrics snapshot JSON (from "
                                       "--metrics PATH), or a Chrome trace "
                                       "with an embedded snapshot")
    p_slo.add_argument("--rules", metavar="PATH", default=None,
                       help="JSON rules file (default: the built-in "
                            "rule set)")
    p_slo.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_slo.set_defaults(fn=cmd_slo)

    p_reg = sub.add_parser(
        "regression", help="diff the calibrated headline quantities "
                           "against the stored baseline (exits non-zero "
                           "on drift)")
    p_reg.add_argument("--baseline", metavar="PATH",
                       default="benchmarks/calibration_baseline.json",
                       help="baseline JSON path (default "
                            "benchmarks/calibration_baseline.json)")
    p_reg.add_argument("--tolerance", type=float, default=0.05,
                       help="relative drift tolerance (default 0.05)")
    p_reg.add_argument("--save", action="store_true",
                       help="re-capture the headlines and overwrite the "
                            "baseline instead of checking")
    p_reg.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_reg.set_defaults(fn=cmd_regression)

    p_loadgen = sub.add_parser(
        "loadgen", help="generate a trace; compare dynamic batching "
                        "vs forced batch=1 on it")
    add_traffic_args(p_loadgen)
    # loadgen's point is the batched-vs-unbatched contrast, which needs
    # an offered load past the batch=1 saturation point (~4k req/s on
    # the K40c model).
    p_loadgen.set_defaults(fn=cmd_loadgen, rate=6000.0)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    if argv is None:
        argv = sys.argv[1:]
    if not argv:
        parser.print_usage(sys.stderr)
        print(f"{parser.prog}: a subcommand is required "
              "(see --help)", file=sys.stderr)
        return 2
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ValueError as exc:
        print(f"{parser.prog}: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
