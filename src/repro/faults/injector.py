"""The runtime half of the fault-injection plane.

A :class:`FaultInjector` turns a frozen
:class:`~repro.faults.plan.FaultPlan` into live behaviour on one
simulated server, using only the existing gpusim observer hooks:

* it attaches a *pressure source* to the
  :class:`~repro.gpusim.allocator.DeviceAllocator` so allocations
  inside a pressure window see a smaller device and raise
  :class:`~repro.errors.MemoryPressureError`;
* it observes the :class:`~repro.gpusim.timing.SimClock` so
  cache-corruption events fire exactly when simulated time passes
  their schedule — no polling in the scheduler;
* the scheduler consults :meth:`check_launch` once per simulated
  kernel dispatch, which raises
  :class:`~repro.errors.TransientKernelError` (with the device's ECC
  scrub-and-replay cost attached) when a transient spec strikes, and
  :meth:`slowdown` when advancing the clock by a service time.

Determinism: all randomness is drawn from one
:func:`repro.rng.make_rng` generator seeded at construction, and draws
happen only for dispatches matching an *active* transient window.
Because the scheduler itself is deterministic, the draw sequence — and
therefore the whole run — is a pure function of
``(trace, seed, fault_plan)``.  A no-op plan never draws, so disabling
faults reproduces the fault-free run bit for bit.
"""

from __future__ import annotations

from typing import Optional

from ..errors import TransientKernelError
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.kernels import replay_cost_s
from ..obs.context import get_obs
from ..rng import DEFAULT_SEED, make_rng
from .plan import FaultPlan, NONE


class FaultInjector:
    """Live fault source for one serving run."""

    def __init__(self, plan: Optional[FaultPlan] = None,
                 seed: int = DEFAULT_SEED,
                 device: DeviceSpec = K40C):
        self.plan = plan if plan is not None else NONE
        self.device = device
        self.seed = seed
        self._rng = make_rng(seed)
        #: Corruption events sorted by schedule; fired is a cursor.
        self._corruptions = sorted(self.plan.corruptions,
                                   key=lambda c: (c.at_s, c.entries))
        self._fired = 0
        self._plan_cache = None
        #: Counters surfaced into the run's StatsReport.
        self.faults_injected = 0
        self.entries_corrupted = 0

    # -- wiring ------------------------------------------------------------

    def install(self, clock, allocator=None, plan_cache=None) -> None:
        """Attach this injector to a server's clock, allocator and plan
        cache via their observer hooks."""
        if allocator is not None and self.plan.pressures:
            allocator.set_pressure(lambda: self.reserve_bytes(clock.now_s))
        if plan_cache is not None and self._corruptions:
            self._plan_cache = plan_cache
            clock.set_observer(self._on_advance)

    def _on_advance(self, old_s: float, new_s: float) -> None:
        while (self._fired < len(self._corruptions)
               and self._corruptions[self._fired].at_s <= new_s):
            spec = self._corruptions[self._fired]
            self._fired += 1
            if self._plan_cache is not None:
                corrupted = self._plan_cache.corrupt(spec.entries)
                self.entries_corrupted += corrupted
                obs = get_obs()
                obs.tracer.event("fault.cache_corruption", at_s=spec.at_s,
                                 entries=corrupted)
                obs.registry.counter("faults_injected_total",
                                     kind="cache_corruption").inc(corrupted)

    # -- queries the scheduler makes ---------------------------------------

    def reserve_bytes(self, now_s: float) -> int:
        """Global-memory bytes withheld by pressure windows at
        ``now_s`` (the allocator's pressure source)."""
        return sum(p.reserve_bytes for p in self.plan.pressures
                   if p.active(now_s))

    def pressure_active(self, now_s: float) -> bool:
        return any(p.active(now_s) for p in self.plan.pressures)

    def slowdown(self, now_s: float) -> float:
        """Service-time multiplier at ``now_s`` (1.0 outside straggler
        windows; overlapping windows compound)."""
        factor = 1.0
        for s in self.plan.stragglers:
            if s.active(now_s):
                factor *= s.slowdown
        return factor

    def check_launch(self, now_s: float, implementation: str,
                     rank: int = 0) -> None:
        """Called once per simulated kernel dispatch; raises
        :class:`TransientKernelError` when a transient spec strikes.

        ``rank`` is the dispatch's fallback depth (0 = the advisor's
        first choice) so ``TOP_RANKED`` plans spare the fallbacks.
        """
        for spec in self.plan.transients:
            if spec.active(now_s) and spec.matches(implementation, rank):
                if float(self._rng.random()) < spec.rate:
                    self.faults_injected += 1
                    get_obs().registry.counter(
                        "faults_injected_total", kind="transient").inc()
                    raise TransientKernelError(
                        implementation, now_s, replay_cost_s(self.device))
