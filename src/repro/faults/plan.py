"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is the *schedule* half of the fault-injection
plane: a frozen value object naming which failure modes strike, whom
they strike and when (in simulated seconds).  The paper itself
documents the failure modes modelled here — section V-B observes that
"abnormal memory usage can lead to program crush" (fbfft exceeding the
K40c's 12 GB) and section IV-B catalogs per-implementation shape
limitations — and related work motivates recovery by substitution:
the seven implementations are interchangeable on most of the
``(b, i, f, k, s)`` space, so a faulted dispatch can fall back to the
advisor's next-ranked plan.

Four event families:

* :class:`TransientFaultSpec` — probabilistic per-launch kernel faults
  (the ECC scrub-and-replay class) inside a time window, targeting one
  implementation, every implementation (``ANY``) or whichever
  implementation is the advisor's current first choice
  (``TOP_RANKED``);
* :class:`MemoryPressureSpec` — windows during which part of global
  memory is reserved away from the workload (a simulated co-tenant /
  fragmentation), shrinking what the allocator may hand out;
* :class:`StragglerSpec` — windows during which service times are
  multiplied (thermal throttling, a contending context);
* :class:`CacheCorruptionSpec` — point events that invalidate entries
  of the serving plan cache (the "poisoned cache" scenario).

Plans carry **no live state**: the runtime half is
:class:`~repro.faults.injector.FaultInjector`, which owns the seeded
RNG, so a serving run stays a pure function of
``(trace, seed, fault_plan)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

#: Wildcard target: the fault may strike any implementation.
ANY = "*"

#: Dynamic target: the fault strikes only the implementation currently
#: dispatched as the advisor's first choice (fallbacks are spared, so
#: recovery by substitution is observable).
TOP_RANKED = "@top"


def _check_window(start_s: float, end_s: float) -> None:
    if start_s < 0:
        raise ValueError(f"start_s must be non-negative, got {start_s}")
    if end_s <= start_s:
        raise ValueError(f"window must be non-empty, got [{start_s}, {end_s})")


@dataclass(frozen=True)
class TransientFaultSpec:
    """Probabilistic transient kernel faults inside one time window."""

    implementation: str = ANY   # paper name, registry name, ANY or TOP_RANKED
    rate: float = 0.1           # per-launch fault probability while active
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if not 0.0 < self.rate <= 1.0:
            raise ValueError(f"rate must be in (0, 1], got {self.rate}")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s

    def matches(self, implementation: str, rank: int) -> bool:
        """Whether a dispatch of ``implementation`` at fallback depth
        ``rank`` (0 = the advisor's first choice) is in scope."""
        if self.implementation == ANY:
            return True
        if self.implementation == TOP_RANKED:
            return rank == 0
        return self.implementation == implementation


@dataclass(frozen=True)
class MemoryPressureSpec:
    """One window during which ``reserve_bytes`` of global memory are
    withheld from the workload."""

    reserve_bytes: int
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.reserve_bytes <= 0:
            raise ValueError(
                f"reserve_bytes must be positive, got {self.reserve_bytes}")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s


@dataclass(frozen=True)
class StragglerSpec:
    """One window during which simulated service times are multiplied
    by ``slowdown``."""

    slowdown: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_s, self.end_s)
        if self.slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {self.slowdown}")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s


@dataclass(frozen=True)
class CacheCorruptionSpec:
    """A point event invalidating ``entries`` plan-cache entries at
    simulated time ``at_s`` (oldest entries first, deterministically)."""

    at_s: float
    entries: int = 1

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")
        if self.entries < 1:
            raise ValueError(f"entries must be >= 1, got {self.entries}")


@dataclass(frozen=True)
class FaultPlan:
    """A named, immutable schedule of fault events."""

    name: str
    transients: Tuple[TransientFaultSpec, ...] = ()
    pressures: Tuple[MemoryPressureSpec, ...] = ()
    stragglers: Tuple[StragglerSpec, ...] = ()
    corruptions: Tuple[CacheCorruptionSpec, ...] = ()

    @property
    def is_noop(self) -> bool:
        """True when the plan schedules nothing (behaviour must be
        byte-identical to running with no plan at all)."""
        return not (self.transients or self.pressures
                    or self.stragglers or self.corruptions)

    def describe(self) -> str:
        if self.is_noop:
            return f"{self.name}: no faults"
        parts = []
        if self.transients:
            parts.append(f"{len(self.transients)} transient window(s)")
        if self.pressures:
            parts.append(f"{len(self.pressures)} memory-pressure window(s)")
        if self.stragglers:
            parts.append(f"{len(self.stragglers)} straggler window(s)")
        if self.corruptions:
            parts.append(f"{len(self.corruptions)} cache-corruption event(s)")
        return f"{self.name}: " + ", ".join(parts)


#: The empty plan: running with it is bit-identical to no plan.
NONE = FaultPlan(name="none")

#: Names accepted by :func:`named_plan` (and the ``repro chaos`` CLI).
PLAN_NAMES = ("none", "transient-top", "memory-pressure", "straggler",
              "cache-chaos", "chaos")


def named_plan(name: str, duration_s: float = 10.0) -> FaultPlan:
    """Build one of the catalogue plans, scaled to a run length.

    Windows are placed at fixed *fractions* of ``duration_s`` so the
    same plan name exercises the same phases of a 1-second smoke run
    and a 60-second soak.  Every build is deterministic: plans contain
    schedules only; randomness lives in the injector's seeded RNG.
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    d = float(duration_s)
    if name == "none":
        return NONE
    if name == "transient-top":
        # The advisor's first choice faults one launch in four for the
        # whole run: retries absorb isolated faults, streaks exhaust
        # the retry budget and force fallback, and long streaks trip
        # the breaker.
        return FaultPlan(
            name=name,
            transients=(TransientFaultSpec(implementation=TOP_RANKED,
                                           rate=0.25),))
    if name == "memory-pressure":
        # Two squeezes leaving only 96 MiB of the K40c's 12 GiB — a
        # few tens of MB of working room above the ~60 MB context
        # baseline: larger batches fault with MemoryPressureError,
        # degrade to smaller caps, recover between windows.
        reserve = 12 * 2**30 - 96 * 2**20
        return FaultPlan(
            name=name,
            pressures=(
                MemoryPressureSpec(reserve_bytes=reserve,
                                   start_s=0.20 * d, end_s=0.40 * d),
                MemoryPressureSpec(reserve_bytes=reserve,
                                   start_s=0.60 * d, end_s=0.80 * d),
            ))
    if name == "straggler":
        return FaultPlan(
            name=name,
            stragglers=(StragglerSpec(slowdown=4.0,
                                      start_s=0.30 * d, end_s=0.60 * d),))
    if name == "cache-chaos":
        return FaultPlan(
            name=name,
            corruptions=tuple(
                CacheCorruptionSpec(at_s=frac * d, entries=8)
                for frac in (0.25, 0.50, 0.75)))
    if name == "chaos":
        # Everything at once — the full drill.
        return FaultPlan(
            name=name,
            transients=(TransientFaultSpec(implementation=TOP_RANKED,
                                           rate=0.25),),
            pressures=(MemoryPressureSpec(reserve_bytes=12 * 2**30 - 112 * 2**20,
                                          start_s=0.40 * d, end_s=0.60 * d),),
            stragglers=(StragglerSpec(slowdown=2.0,
                                      start_s=0.70 * d, end_s=0.85 * d),),
            corruptions=(CacheCorruptionSpec(at_s=0.50 * d, entries=8),),
        )
    raise KeyError(f"unknown fault plan {name!r}; options: {PLAN_NAMES}")
