"""Deterministic fault injection.

The failure modes the paper observed — OOM "program crush" (section
V-B), per-implementation shape limits (section IV-B) — plus the
operational ones any serving stack meets (transient kernel faults,
stragglers, cache corruption), expressed as seeded, reproducible
schedules:

* :mod:`repro.faults.plan` — frozen :class:`FaultPlan` value objects
  (what strikes, whom, when) and a catalogue of named plans;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` runtime
  that installs a plan onto a server's clock / allocator / plan cache
  through the existing observer hooks and raises the typed errors;
* :mod:`repro.faults.fleet` — fleet-level chaos: replica-targeted
  crashes, degrade windows and flapping plus correlated failure
  domains (:class:`FleetFaultPlan`), consumed by the cluster health
  plane (:mod:`repro.cluster.health`).

A serving run under injection is a pure function of
``(trace, seed, fault_plan)``; the empty plan is bit-identical to no
plan at all.  The resilient consumption side lives in
:mod:`repro.serve` (retries, implementation fallback, circuit
breaker, degradation).
"""

from .fleet import (DomainFailureSpec, FLEET_NONE, FLEET_PLAN_NAMES,
                    FleetFaultPlan, ReplicaCrashSpec, ReplicaDegradeSpec,
                    ReplicaFlapSpec, named_fleet_plan)
from .injector import FaultInjector
from .plan import (ANY, CacheCorruptionSpec, FaultPlan, MemoryPressureSpec,
                   NONE, PLAN_NAMES, StragglerSpec, TOP_RANKED,
                   TransientFaultSpec, named_plan)

__all__ = [
    "ANY",
    "CacheCorruptionSpec",
    "DomainFailureSpec",
    "FLEET_NONE",
    "FLEET_PLAN_NAMES",
    "FaultInjector",
    "FaultPlan",
    "FleetFaultPlan",
    "MemoryPressureSpec",
    "NONE",
    "PLAN_NAMES",
    "ReplicaCrashSpec",
    "ReplicaDegradeSpec",
    "ReplicaFlapSpec",
    "StragglerSpec",
    "TOP_RANKED",
    "TransientFaultSpec",
    "named_fleet_plan",
    "named_plan",
]
