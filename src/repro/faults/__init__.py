"""Deterministic fault injection.

The failure modes the paper observed — OOM "program crush" (section
V-B), per-implementation shape limits (section IV-B) — plus the
operational ones any serving stack meets (transient kernel faults,
stragglers, cache corruption), expressed as seeded, reproducible
schedules:

* :mod:`repro.faults.plan` — frozen :class:`FaultPlan` value objects
  (what strikes, whom, when) and a catalogue of named plans;
* :mod:`repro.faults.injector` — the :class:`FaultInjector` runtime
  that installs a plan onto a server's clock / allocator / plan cache
  through the existing observer hooks and raises the typed errors.

A serving run under injection is a pure function of
``(trace, seed, fault_plan)``; the empty plan is bit-identical to no
plan at all.  The resilient consumption side lives in
:mod:`repro.serve` (retries, implementation fallback, circuit
breaker, degradation).
"""

from .injector import FaultInjector
from .plan import (ANY, CacheCorruptionSpec, FaultPlan, MemoryPressureSpec,
                   NONE, PLAN_NAMES, StragglerSpec, TOP_RANKED,
                   TransientFaultSpec, named_plan)

__all__ = [
    "ANY",
    "CacheCorruptionSpec",
    "FaultInjector",
    "FaultPlan",
    "MemoryPressureSpec",
    "NONE",
    "PLAN_NAMES",
    "StragglerSpec",
    "TOP_RANKED",
    "TransientFaultSpec",
    "named_plan",
]
