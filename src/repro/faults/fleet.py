"""Fleet-level chaos: replica-targeted faults and failure domains.

:class:`~repro.faults.plan.FaultPlan` strikes *inside* one server
(kernel faults, memory pressure, stragglers, cache corruption).  This
module adds the failure modes that only exist at fleet scale, as the
same kind of frozen, seeded-runtime-free value objects:

* :class:`ReplicaCrashSpec` — a replica's process dies silently at a
  point in time.  Unlike a scheduled *kill* (observable at kill time),
  a crash is invisible to the fleet until the health plane's probes
  stop seeing heartbeats: traffic keeps routing into the dead
  replica's queue until the detector suspects it;
* :class:`ReplicaDegradeSpec` — a window during which one replica runs
  ``factor`` times slower (service times *and* heartbeats), the
  grey-failure case that trips false suspicions;
* :class:`ReplicaFlapSpec` — a replica that dies and self-recovers on
  a cycle, the detector-tuning stress test;
* :class:`DomainFailureSpec` — a correlated outage: every replica in a
  named failure domain (a rack, a power feed) crashes at once.

Specs target *slots* — the replica's original index, which survives
supervisor restarts (`Replica.origin`) — so "crash replica 1 at 2 s
and again at 5 s" keeps meaning the same fleet member across its
incarnations.  A :class:`FleetFaultPlan` carries no live state;
everything stochastic stays in the health plane's seeded RNG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .plan import _check_window


def _check_slot(replica: int) -> None:
    if replica < 0:
        raise ValueError(f"replica slot must be >= 0, got {replica}")


@dataclass(frozen=True)
class ReplicaCrashSpec:
    """Replica ``replica``'s process dies at ``at_s`` (silently: the
    fleet learns of it only through missed heartbeats)."""

    replica: int
    at_s: float

    def __post_init__(self) -> None:
        _check_slot(self.replica)
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")


@dataclass(frozen=True)
class ReplicaDegradeSpec:
    """One window during which replica ``replica`` runs ``factor``
    times slower — service times are multiplied (compiled into a
    per-replica straggler window) and heartbeats arrive ``factor``
    probe intervals apart, so a large enough factor looks exactly like
    a death until the late heartbeat lands (a *false* suspicion)."""

    replica: int
    factor: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_slot(self.replica)
        _check_window(self.start_s, self.end_s)
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def active(self, now_s: float) -> bool:
        return self.start_s <= now_s < self.end_s


@dataclass(frozen=True)
class ReplicaFlapSpec:
    """Replica ``replica`` dies for ``down_s`` at the start of every
    ``period_s`` cycle inside ``[start_s, end_s)``, recovering on its
    own each time (no supervisor involved)."""

    replica: int
    period_s: float
    down_s: float
    start_s: float = 0.0
    end_s: float = math.inf

    def __post_init__(self) -> None:
        _check_slot(self.replica)
        _check_window(self.start_s, self.end_s)
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if not 0 < self.down_s < self.period_s:
            raise ValueError(
                f"down_s must be in (0, period_s), got {self.down_s}")

    def transitions(self) -> List[Tuple[float, bool]]:
        """The ``(time, down)`` edge list, down edges paired with
        their recoveries, clipped to the window."""
        edges: List[Tuple[float, bool]] = []
        t = self.start_s
        while t < self.end_s:
            edges.append((t, True))
            edges.append((min(t + self.down_s, self.end_s), False))
            t += self.period_s
        return edges


@dataclass(frozen=True)
class DomainFailureSpec:
    """Every replica in failure domain ``domain`` crashes at ``at_s``
    (the correlated-outage case: one rack, one power feed)."""

    domain: str
    at_s: float

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError("domain must be a non-empty name")
        if self.at_s < 0:
            raise ValueError(f"at_s must be non-negative, got {self.at_s}")


@dataclass(frozen=True)
class FleetFaultPlan:
    """A named, immutable schedule of fleet-level fault events.

    ``domains`` maps a failure-domain name to the replica slots it
    contains; every :class:`DomainFailureSpec` must name a known
    domain.  Crash-bearing plans (crashes, flaps, domain failures)
    require the cluster health plane — without probes nobody would
    ever notice the death and the stranded queue would deadlock the
    event loop; :class:`~repro.cluster.fleet.ClusterConfig` validates
    this.  Degrade-only plans work with or without health.
    """

    name: str
    crashes: Tuple[ReplicaCrashSpec, ...] = ()
    degrades: Tuple[ReplicaDegradeSpec, ...] = ()
    flaps: Tuple[ReplicaFlapSpec, ...] = ()
    domain_failures: Tuple[DomainFailureSpec, ...] = ()
    domains: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for spec in self.domain_failures:
            if spec.domain not in self.domains:
                raise ValueError(
                    f"domain failure names unknown domain {spec.domain!r}; "
                    f"known: {sorted(self.domains)}")

    @property
    def is_noop(self) -> bool:
        return not (self.crashes or self.degrades or self.flaps
                    or self.domain_failures)

    @property
    def needs_health(self) -> bool:
        """Whether the plan schedules deaths only the health plane can
        observe and recover from."""
        return bool(self.crashes or self.flaps or self.domain_failures)

    def crash_events(self) -> List[Tuple[float, int]]:
        """Every scheduled crash as ``(time, slot)``, domain failures
        expanded to their members, sorted by ``(time, slot)``."""
        events = [(s.at_s, s.replica) for s in self.crashes]
        for spec in self.domain_failures:
            events.extend((spec.at_s, slot)
                          for slot in self.domains[spec.domain])
        return sorted(events)

    def flap_events(self) -> List[Tuple[float, int, bool]]:
        """Every flap edge as ``(time, slot, down)``, sorted by
        ``(time, slot)``; recoveries sort after deaths at equal
        times so a zero-length window nets to up."""
        events = [(t, s.replica, down)
                  for s in self.flaps for t, down in s.transitions()]
        return sorted(events, key=lambda e: (e[0], e[1], not e[2]))

    def degrades_for(self, slot: int) -> Tuple[ReplicaDegradeSpec, ...]:
        return tuple(s for s in self.degrades if s.replica == slot)

    def first_event_s(self) -> Optional[float]:
        """When the first fault of any kind lands (``None``: no-op
        plan) — the boundary the recovery analysis uses to split a run
        into its pre-fault baseline and everything after."""
        times = ([t for t, _ in self.crash_events()]
                 + [t for t, _, _ in self.flap_events()]
                 + [s.start_s for s in self.degrades])
        return min(times) if times else None

    def degrade_factor(self, slot: int, now_s: float) -> float:
        """The worst slowdown in force for ``slot`` at ``now_s``
        (1.0 = healthy)."""
        factor = 1.0
        for spec in self.degrades:
            if spec.replica == slot and spec.active(now_s):
                factor = max(factor, spec.factor)
        return factor

    def describe(self) -> str:
        if self.is_noop:
            return f"{self.name}: no fleet faults"
        parts = []
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash(es)")
        if self.degrades:
            parts.append(f"{len(self.degrades)} degrade window(s)")
        if self.flaps:
            parts.append(f"{len(self.flaps)} flapping replica(s)")
        if self.domain_failures:
            parts.append(f"{len(self.domain_failures)} domain failure(s)")
        return f"{self.name}: " + ", ".join(parts)


#: The empty fleet plan.
FLEET_NONE = FleetFaultPlan(name="none")

#: Names accepted by :func:`named_fleet_plan` (and ``repro chaos
#: --cluster``).
FLEET_PLAN_NAMES = ("none", "crash", "degrade", "flapping",
                    "domain-outage", "fleet-chaos")


def named_fleet_plan(name: str, duration_s: float = 10.0,
                     replicas: int = 4) -> FleetFaultPlan:
    """Build one of the catalogue fleet plans, scaled to a run length.

    As with :func:`~repro.faults.plan.named_plan`, events sit at fixed
    *fractions* of ``duration_s`` so the same name exercises the same
    phases of a smoke run and a soak.  ``replicas`` bounds the slots
    targeted (plans degrade gracefully on small fleets but need at
    least two replicas so the fleet survives the fault).
    """
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if replicas < 2:
        raise ValueError(f"fleet plans need >= 2 replicas, got {replicas}")
    d = float(duration_s)
    last = replicas - 1
    if name == "none":
        return FLEET_NONE
    if name == "crash":
        # One silent death mid-run: detection latency, queue
        # evacuation, one restart with a cold plan cache.
        return FleetFaultPlan(
            name=name, crashes=(ReplicaCrashSpec(replica=1, at_s=0.30 * d),))
    if name == "degrade":
        # A grey failure: 4x slowdown delays heartbeats enough to trip
        # a (false) suspicion, then the late heartbeat clears it.
        return FleetFaultPlan(
            name=name,
            degrades=(ReplicaDegradeSpec(replica=1, factor=4.0,
                                         start_s=0.25 * d, end_s=0.70 * d),))
    if name == "flapping":
        # Repeated die/recover cycles inside one window.
        return FleetFaultPlan(
            name=name,
            flaps=(ReplicaFlapSpec(replica=last, period_s=0.20 * d,
                                   down_s=0.06 * d,
                                   start_s=0.20 * d, end_s=0.80 * d),))
    if name == "domain-outage":
        # Correlated failure: the first half of the fleet shares a
        # domain and dies together.
        members = tuple(range(max(1, replicas // 2)))
        return FleetFaultPlan(
            name=name,
            domains={"rack0": members},
            domain_failures=(DomainFailureSpec(domain="rack0",
                                               at_s=0.40 * d),))
    if name == "fleet-chaos":
        # Everything at once, on disjoint slots where possible.
        members = tuple(range(max(1, replicas // 2)))
        return FleetFaultPlan(
            name=name,
            crashes=(ReplicaCrashSpec(replica=last, at_s=0.65 * d),),
            degrades=(ReplicaDegradeSpec(replica=last, factor=3.0,
                                         start_s=0.10 * d, end_s=0.30 * d),),
            domains={"rack0": members},
            domain_failures=(DomainFailureSpec(domain="rack0",
                                               at_s=0.40 * d),),
        )
    raise KeyError(
        f"unknown fleet fault plan {name!r}; options: {FLEET_PLAN_NAMES}")
