"""Model summary printer.

A torchsummary-style table — layer, type, output shape, parameter
count — for any container that implements ``shape_walk``, plus
aggregate statistics (total parameters, activation memory of one
forward pass).  Used by the examples; the paper's model-size claims in
section I ("more than 60 million parameters", "about 6.8 million
parameters") print straight out of this.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.report import table
from .module import Layer


def _shape_str(shape) -> str:
    if isinstance(shape, list):
        return " + ".join(str(tuple(s)) for s in shape)
    return str(tuple(shape))


def _elems(shape) -> int:
    if isinstance(shape, list):
        return sum(int(np.prod(s)) for s in shape)
    return int(np.prod(shape))


def summarize(model, input_shape: Tuple[int, ...],
              itemsize: int = 4) -> str:
    """Render the per-layer summary table of a model."""
    walk = model.shape_walk(input_shape)
    rows: List[List] = []
    total_params = 0
    activation_bytes = _elems(input_shape) * itemsize
    for layer, in_shape, out_shape in walk:
        params = layer.parameter_count()
        total_params += params
        activation_bytes += _elems(out_shape) * itemsize
        rows.append([layer.name, layer.layer_type, _shape_str(out_shape),
                     f"{params:,}"])
    body = table(["layer", "type", "output shape", "params"], rows,
                 title=f"{getattr(model, 'name', 'model')} on input "
                       f"{tuple(input_shape)}")
    footer = (
        f"\ntotal parameters: {total_params:,} "
        f"({total_params * itemsize / 2**20:.1f} MB fp32)\n"
        f"forward activations: {activation_bytes / 2**20:.1f} MB "
        f"(x2-3 with gradients during training)"
    )
    return body + footer


def parameter_breakdown(model) -> List[Tuple[str, int]]:
    """(parameter name, element count), largest first."""
    out = [(p.name or "unnamed", p.size) for p in model.parameters()]
    out.sort(key=lambda t: -t[1])
    return out
