"""Classification metrics for the training examples.

Top-1/top-k accuracy (the ILSVRC reporting convention the paper's
model zoo was built around) and a confusion matrix for the digit
example.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError


def _check(logits: np.ndarray, labels: np.ndarray) -> None:
    if logits.ndim != 2:
        raise ShapeError(f"expected (batch, classes) logits, got {logits.shape}")
    labels = np.asarray(labels)
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
        )


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    _check(logits, labels)
    return float((logits.argmax(axis=1) == np.asarray(labels)).mean())


def topk_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy (ILSVRC top-5 convention for k = 5)."""
    _check(logits, labels)
    if not (1 <= k <= logits.shape[1]):
        raise ShapeError(
            f"k must be in [1, {logits.shape[1]}], got {k}"
        )
    topk = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    hits = (topk == np.asarray(labels)[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(logits: np.ndarray, labels: np.ndarray,
                     classes: int = None) -> np.ndarray:
    """``C[i, j]`` = count of class-``i`` samples predicted as ``j``."""
    _check(logits, labels)
    labels = np.asarray(labels)
    preds = logits.argmax(axis=1)
    n = classes if classes is not None else logits.shape[1]
    if labels.max(initial=0) >= n or preds.max(initial=0) >= n:
        raise ShapeError("labels/predictions exceed the class count")
    cm = np.zeros((n, n), dtype=np.int64)
    np.add.at(cm, (labels, preds), 1)
    return cm


def per_class_accuracy(cm: np.ndarray) -> np.ndarray:
    """Diagonal recall of each class from a confusion matrix (NaN for
    classes with no samples)."""
    if cm.ndim != 2 or cm.shape[0] != cm.shape[1]:
        raise ShapeError(f"confusion matrix must be square, got {cm.shape}")
    totals = cm.sum(axis=1).astype(float)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(cm) / totals, np.nan)
