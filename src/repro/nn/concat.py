"""Channel concatenation — GoogLeNet's Concat layer (Fig. 2)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from .module import Layer


class Concat(Layer):
    """Concatenate a list of NCHW tensors along the channel axis.

    Unlike the other layers, ``forward`` takes a *list* of inputs and
    ``backward`` returns a list of gradients — the
    :class:`~repro.nn.network.Graph` container routes them.
    """

    layer_type = "Concat"
    multi_input = True

    def forward(self, xs: Sequence[np.ndarray]) -> np.ndarray:
        if not xs:
            raise ShapeError(f"{self.name}: needs at least one input")
        base = xs[0].shape
        for x in xs[1:]:
            if x.ndim != 4 or x.shape[0] != base[0] or x.shape[2:] != base[2:]:
                raise ShapeError(
                    f"{self.name}: inputs must share batch and spatial dims; "
                    f"got {[x.shape for x in xs]}"
                )
        self._splits = np.cumsum([x.shape[1] for x in xs])[:-1]
        return np.concatenate(xs, axis=1)

    def backward(self, dy: np.ndarray) -> List[np.ndarray]:
        return np.split(dy, self._splits, axis=1)

    def output_shape(self, input_shapes: Sequence[Tuple[int, ...]]) -> Tuple[int, ...]:
        b, _, h, w = input_shapes[0]
        channels = sum(s[1] for s in input_shapes)
        return (b, channels, h, w)
