"""Whole-model runtime simulation — the Fig. 2 substrate.

Walks a model's layers (via ``shape_walk``) and attributes simulated
K40c time to each one for a full training iteration (one forward plus
one backward propagation, as in section IV-A).  Convolution layers go
through a selected :mod:`repro.frameworks` implementation; the other
layer types get first-order kernel models:

* pooling / ReLU / LRN / dropout / concat are bandwidth-bound
  streaming kernels (so many bytes read and written per pass);
* FC layers are three cuBLAS GEMMs (forward, dgrad, wgrad).

This reproduces the paper's observation that convolution dominates
(86-94 %) because its FLOPs dwarf everything else while the streaming
layers move only a few activation-sized buffers.

The walk reports into the observability plane
(:func:`repro.obs.context.get_obs`): layer counters always, and — when
a tracer with an advanceable clock is active — one ``nn.iteration``
span containing per-layer ``nn.forward`` spans in layer order followed
by ``nn.backward`` spans in reverse, each sized by its simulated time,
so a model breakdown lands on the same timeline the serving spans use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import ConvConfig
from ..errors import ShapeError
from ..frameworks.base import ConvImplementation
from ..frameworks.calibration import GEMM_CALIBRATION, ITEMSIZE, TABLE2_RESOURCES
from ..frameworks.registry import get_implementation
from ..frameworks._plans import gemm_spec, pointwise_spec
from ..gpusim.device import DeviceSpec, K40C
from ..gpusim.profiler import Profiler
from ..obs.context import get_obs
from .concat import Concat
from .conv_layer import Conv2d
from .dropout import Dropout
from .fc import Linear
from .flatten import Flatten
from .lrn import LocalResponseNorm
from .module import Layer
from .pooling import _Pool2d
from .relu import ReLU


#: Share of a full training iteration spent in the forward pass (the
#: same one-forward-plus-two-equal-backward convention the serving
#: scheduler's ``FORWARD_FRACTION`` uses) — applied to convolution
#: layers, whose kernel plans cover the whole iteration.
_FORWARD_FRACTION = 1.0 / 3.0


@dataclass(frozen=True)
class LayerCost:
    """Simulated time of one layer for one training iteration."""

    layer: Layer
    layer_type: str
    time_s: float
    #: Forward / backward split of :attr:`time_s` (they sum to it).
    forward_s: float = 0.0
    backward_s: float = 0.0


def _elems(shape) -> int:
    n = 1
    for d in shape[1:] if False else shape:
        n *= d
    return n


def _streaming_time(prof: Profiler, name: str, passes_bytes: float) -> None:
    """Launch a bandwidth-bound kernel moving ``passes_bytes`` each way."""
    res = TABLE2_RESOURCES["caffe"]  # generic framework kernels
    prof.launch(pointwise_spec(name, res, passes_bytes))


def _fc_time(fwd: Profiler, bwd: Profiler, layer: Linear,
             batch: int) -> None:
    """Three GEMMs of an FC layer's training iteration."""
    res = TABLE2_RESOURCES["caffe"]
    cal = GEMM_CALIBRATION["caffe"]
    m, k = layer.out_features, layer.in_features
    fwd.launch(gemm_spec("sgemm_fc_fwd", res, cal, m, batch, k))
    bwd.launch(gemm_spec("sgemm_fc_bgrad", res, cal, k, batch, m))
    bwd.launch(gemm_spec("sgemm_fc_wgrad", res, cal, m, k, batch))


def layer_time_split(layer: Layer, in_shape, out_shape,
                     conv_impl: ConvImplementation,
                     device: DeviceSpec = K40C) -> Tuple[float, float]:
    """Simulated (forward, backward) time of a single layer, seconds.

    Convolutions run as whole-iteration kernel plans, so their split
    applies the :data:`_FORWARD_FRACTION` convention; every other
    layer type launches its forward- and backward-pass kernels into
    separate profilers and reports the exact split.
    """
    if isinstance(layer, Conv2d):
        config = layer.conv_config(in_shape)
        if not conv_impl.supports(config):
            # Real frameworks fall back to their general-purpose conv
            # op where the selected one cannot run (e.g. Theano-fft on
            # AlexNet's stride-4 conv1 falls back to CorrMM).
            conv_impl = get_implementation("theano-corrmm")
        total = conv_impl.profile_iteration(config, device).gpu_time_s
        forward = total * _FORWARD_FRACTION
        return forward, total - forward

    fwd, bwd = Profiler(device), Profiler(device)
    in_bytes = float(_elems(in_shape)) * ITEMSIZE
    out_bytes = float(_elems(out_shape)) * ITEMSIZE

    if isinstance(layer, Linear):
        _fc_time(fwd, bwd, layer, in_shape[0])
    elif isinstance(layer, _Pool2d):
        # fwd: read x, write y; bwd: read dy, scatter dx.
        _streaming_time(fwd, f"{layer.name}_fwd", in_bytes + out_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", in_bytes + out_bytes)
    elif isinstance(layer, ReLU):
        _streaming_time(fwd, f"{layer.name}_fwd", 2 * in_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", 2 * in_bytes)
    elif isinstance(layer, LocalResponseNorm):
        # LRN makes several sweeps over the activations per pass.
        _streaming_time(fwd, f"{layer.name}_fwd", 3 * in_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", 4 * in_bytes)
    elif isinstance(layer, Concat):
        _streaming_time(fwd, f"{layer.name}_fwd", 2 * out_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", 2 * out_bytes)
    elif type(layer).__name__ == "BatchNorm2d":
        # Two statistics/normalise sweeps forward, three backward
        # (xhat, reductions, dx) — all bandwidth-bound.
        _streaming_time(fwd, f"{layer.name}_fwd", 2 * in_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", 3 * in_bytes)
    elif type(layer).__name__ == "Add":
        _streaming_time(fwd, f"{layer.name}_fwd", 2 * out_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", out_bytes)
    elif isinstance(layer, Dropout):
        _streaming_time(fwd, f"{layer.name}_fwd", 2 * in_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", 2 * in_bytes)
    elif isinstance(layer, Flatten):
        return 0.0, 0.0  # a reshape is free on device
    else:
        # Unknown layer type: charge one streaming pass each way.
        _streaming_time(fwd, f"{layer.name}_fwd", in_bytes + out_bytes)
        _streaming_time(bwd, f"{layer.name}_bwd", in_bytes + out_bytes)
    return fwd.gpu_time(), bwd.gpu_time()


def layer_time(layer: Layer, in_shape, out_shape,
               conv_impl: ConvImplementation,
               device: DeviceSpec = K40C) -> float:
    """Simulated training-iteration time of a single layer, seconds."""
    forward, backward = layer_time_split(layer, in_shape, out_shape,
                                         conv_impl, device)
    return forward + backward


def model_breakdown(model, input_shape: Tuple[int, ...],
                    implementation: str = "cudnn",
                    device: DeviceSpec = K40C) -> List[LayerCost]:
    """Per-layer simulated times of one training iteration.

    ``model`` must provide ``shape_walk`` (both containers do).
    Concat inputs arrive as a list of shapes; its cost uses the output.
    """
    impl = get_implementation(implementation)
    walk = model.shape_walk(input_shape)
    obs = get_obs()
    costs: List[LayerCost] = []
    for layer, in_shape, out_shape in walk:
        if isinstance(in_shape, list):  # Concat
            first = in_shape[0]
        else:
            first = in_shape
        forward, backward = layer_time_split(layer, first, out_shape,
                                             impl, device)
        obs.registry.counter("nn_layers_total",
                             type=layer.layer_type).inc()
        obs.registry.histogram("nn_layer_time_seconds").observe(
            forward + backward)
        costs.append(LayerCost(layer=layer, layer_type=layer.layer_type,
                               time_s=forward + backward,
                               forward_s=forward, backward_s=backward))
    obs.registry.counter("nn_iterations_total").inc()
    _trace_iteration(obs.tracer, costs, type(model).__name__,
                     impl.paper_name)
    return costs


def _trace_iteration(tracer, costs: Sequence[LayerCost], model: str,
                     implementation: str) -> None:
    """Record one training iteration as a span tree: ``nn.iteration``
    containing per-layer ``nn.forward`` spans in layer order, then
    ``nn.backward`` spans in reverse (the BP order).

    Needs a tracer whose clock can ``advance`` (a
    :class:`~repro.gpusim.timing.SimClock`); the simulated layer times
    are consumed from that clock, so the spans land back-to-back on
    the session's timeline.  A disabled tracer skips all of it.
    """
    if not tracer.enabled or not hasattr(tracer.clock, "advance"):
        return
    clock = tracer.clock
    with tracer.span("nn.iteration", cat="nn", model=model,
                     implementation=implementation, layers=len(costs)):
        for cost in costs:
            with tracer.span("nn.forward", cat="nn",
                             layer=cost.layer.name, type=cost.layer_type):
                clock.advance(cost.forward_s)
        for cost in reversed(costs):
            with tracer.span("nn.backward", cat="nn",
                             layer=cost.layer.name, type=cost.layer_type):
                clock.advance(cost.backward_s)


def breakdown_by_type(costs: Sequence[LayerCost]) -> Dict[str, float]:
    """Aggregate layer costs into Fig. 2's layer-type shares
    (fractions of total time, summing to 1)."""
    total = sum(c.time_s for c in costs)
    if total <= 0:
        raise ShapeError("model has no simulated runtime")
    shares: Dict[str, float] = {}
    for c in costs:
        if c.time_s == 0:
            continue
        shares[c.layer_type] = shares.get(c.layer_type, 0.0) + c.time_s / total
    return shares
