"""Learning-rate schedules.

AlexNet-era training used step decay ("divide the learning rate by 10
when the validation error plateaus"); modern reproductions also need
warm-up and polynomial decay (GoogLeNet trained with a 4 %-per-8-epoch
poly schedule).  Schedules compose with :class:`~repro.nn.trainer.SGD`
via :class:`ScheduledSGD` or by calling ``schedule(step)`` manually.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from ..errors import ShapeError
from .trainer import SGD

Schedule = Callable[[int], float]


def constant(lr: float) -> Schedule:
    """lr(step) = lr."""
    if lr <= 0:
        raise ShapeError(f"lr must be positive, got {lr}")
    return lambda step: lr


def step_decay(lr: float, drop: float = 0.1, every: int = 100) -> Schedule:
    """AlexNet-style: multiply by ``drop`` every ``every`` steps."""
    if lr <= 0 or not (0 < drop <= 1) or every <= 0:
        raise ShapeError("invalid step_decay parameters")
    return lambda step: lr * drop ** (step // every)


def poly_decay(lr: float, total_steps: int, power: float = 0.5) -> Schedule:
    """GoogLeNet-style polynomial decay to zero over ``total_steps``."""
    if lr <= 0 or total_steps <= 0 or power <= 0:
        raise ShapeError("invalid poly_decay parameters")

    def fn(step: int) -> float:
        frac = min(step / total_steps, 1.0)
        return lr * (1.0 - frac) ** power

    return fn


def warmup(base: Schedule, steps: int) -> Schedule:
    """Linear warm-up from 0 to the base schedule over ``steps``."""
    if steps <= 0:
        raise ShapeError(f"warmup steps must be positive, got {steps}")

    def fn(step: int) -> float:
        scale = min((step + 1) / steps, 1.0)
        return base(step) * scale

    return fn


class ScheduledSGD(SGD):
    """SGD whose learning rate follows a schedule.

    ``step()`` consults the schedule with an internal counter, so the
    trainer loop needs no changes.
    """

    def __init__(self, parameters, schedule: Schedule,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        super().__init__(parameters, lr=max(schedule(0), 1e-30),
                         momentum=momentum, weight_decay=weight_decay)
        self.schedule = schedule
        self._step_count = 0
        self.lr_history: List[float] = []

    def step(self) -> None:
        self.lr = max(self.schedule(self._step_count), 0.0)
        self.lr_history.append(self.lr)
        self._step_count += 1
        if self.lr > 0.0:
            super().step()
