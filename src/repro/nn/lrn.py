"""Local response normalisation (across channels).

AlexNet/GoogLeNet-era layer:

    y_i = x_i / (k + alpha/n * sum_{j in window(i)} x_j^2)^beta

with the exact analytic backward pass.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from .module import Layer, check_nchw


class LocalResponseNorm(Layer):
    """Cross-channel LRN with AlexNet's default hyper-parameters."""

    layer_type = "LRN"

    def __init__(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75,
                 k: float = 1.0, name: str = ""):
        super().__init__(name or "lrn")
        if size <= 0 or size % 2 == 0:
            raise ShapeError(f"size must be a positive odd integer, got {size}")
        if alpha <= 0 or beta <= 0 or k <= 0:
            raise ShapeError("alpha, beta, k must be positive")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def _window_sum_sq(self, x: np.ndarray) -> np.ndarray:
        """Channel-windowed sum of squares via a cumulative sum."""
        half = self.size // 2
        sq = x * x
        c = x.shape[1]
        csum = np.concatenate(
            [np.zeros_like(sq[:, :1]), np.cumsum(sq, axis=1)], axis=1)
        lo = np.maximum(np.arange(c) - half, 0)
        hi = np.minimum(np.arange(c) + half + 1, c)
        return csum[:, hi] - csum[:, lo]

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x, self)
        s = self._window_sum_sq(x)
        denom = self.k + (self.alpha / self.size) * s
        self._x = x
        self._denom = denom
        return x * denom ** (-self.beta)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x, denom = self._x, self._denom
        half = self.size // 2
        c = x.shape[1]
        pow_b = denom ** (-self.beta)
        # dL/dx_i = dy_i * denom_i^-b
        #           - 2ab/n * x_i * sum_{j: i in window(j)} dy_j x_j denom_j^{-b-1}
        core = dy * x * denom ** (-self.beta - 1.0)
        csum = np.concatenate(
            [np.zeros_like(core[:, :1]), np.cumsum(core, axis=1)], axis=1)
        lo = np.maximum(np.arange(c) - half, 0)
        hi = np.minimum(np.arange(c) + half + 1, c)
        windowed = csum[:, hi] - csum[:, lo]
        return dy * pow_b - (2.0 * self.alpha * self.beta / self.size) * x * windowed
