"""CNN substrate: layers, network containers, reference models,
training loop and whole-model runtime simulation.

This subpackage provides what the paper's "high-level workload
profiling" (section IV-A) needs: real, trainable definitions of the
layer types the four profiled models are built from (convolution,
pooling, ReLU, fully-connected, LRN, concat, dropout, softmax), the
AlexNet / VGG / OverFeat / GoogLeNet architectures themselves, and a
simulator that attributes device time to every layer of a training
iteration (Fig. 2's runtime breakdown).

The layers compute real forward/backward passes in NumPy (gradient-
checked in the test suite), so the same definitions also power the
LeNet-5 training example.
"""

from .module import Layer, Parameter
from .conv_layer import Conv2d
from .pooling import MaxPool2d, AvgPool2d
from .relu import ReLU
from .fc import Linear
from .lrn import LocalResponseNorm
from .concat import Concat
from .add import Add
from .batchnorm import BatchNorm2d
from .dropout import Dropout
from .softmax import softmax, SoftmaxCrossEntropy
from .flatten import Flatten
from .network import Sequential, Graph
from .loss import Loss
from .trainer import SGD, Trainer
from .schedules import ScheduledSGD, constant, poly_decay, step_decay, warmup
from .gradcheck import check_gradients
from .summary import parameter_breakdown, summarize
from .checkpoint import load_weights, save_weights, state_dict, load_state_dict

__all__ = [
    "Layer",
    "Parameter",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "ReLU",
    "Linear",
    "LocalResponseNorm",
    "Concat",
    "Add",
    "BatchNorm2d",
    "Dropout",
    "softmax",
    "SoftmaxCrossEntropy",
    "Flatten",
    "Sequential",
    "Graph",
    "Loss",
    "SGD",
    "Trainer",
    "ScheduledSGD",
    "constant",
    "poly_decay",
    "step_decay",
    "warmup",
    "check_gradients",
    "summarize",
    "parameter_breakdown",
    "save_weights",
    "load_weights",
    "state_dict",
    "load_state_dict",
]
