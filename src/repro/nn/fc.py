"""Fully-connected (inner-product) layer."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import make_rng
from .module import Layer, Parameter


class Linear(Layer):
    """Affine map ``y = x @ W.T + b`` on 2-D ``(batch, features)``
    inputs — the FC layers of Fig. 2's breakdown."""

    layer_type = "FC"

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng=None, name: str = ""):
        super().__init__(name or "fc")
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        gen = make_rng(rng)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            gen.standard_normal((out_features, in_features)) * scale,
            name=f"{self.name}.weight")
        self.bias = Parameter(np.zeros(out_features),
                              name=f"{self.name}.bias") if bias else None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 2 or input_shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected (batch, {self.in_features}), got {input_shape}"
            )
        return (input_shape[0], self.out_features)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ShapeError(f"{self.name}: expected 2-D input, got ndim={x.ndim}")
        if x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected {self.in_features} features, got {x.shape[1]}"
            )
        self._x = x
        y = x @ self.weight.value.T
        if self.bias is not None:
            y += self.bias.value
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        self.weight.grad += dy.T @ self._x
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=0)
        return dy @ self.weight.value

    def parameters(self):
        return [self.weight] + ([self.bias] if self.bias is not None else [])
