"""Flatten NCHW activations into (batch, features) for FC layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from .module import Layer


class Flatten(Layer):
    """Reshape ``(b, ...)`` activations to ``(b, features)``."""

    layer_type = "Flatten"

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim < 2:
            raise ShapeError(f"{self.name}: expected >=2-D input, got ndim={x.ndim}")
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        return dy.reshape(self._shape)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        n = 1
        for d in input_shape[1:]:
            n *= d
        return (input_shape[0], n)
