"""Rectified linear unit."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .module import Layer


class ReLU(Layer):
    """Elementwise ``max(x, 0)``; backward masks by the forward sign."""

    layer_type = "ReLU"

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if dy.shape != self._mask.shape:
            raise ValueError(
                f"{self.name}: gradient shape {dy.shape} does not match "
                f"forward shape {self._mask.shape}"
            )
        return np.where(self._mask, dy, 0.0)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)
