"""OverFeat (Sermanet et al. 2013), "fast" model.

Five convolutional stages and three fully-connected layers over
231x231x3 inputs.
"""

from __future__ import annotations

from ..conv_layer import Conv2d
from ..dropout import Dropout
from ..fc import Linear
from ..flatten import Flatten
from ..network import Sequential
from ..pooling import MaxPool2d
from ..relu import ReLU


def overfeat(num_classes: int = 1000, backend=None, rng=None) -> Sequential:
    """Build the OverFeat fast model."""
    return Sequential(
        Conv2d(3, 96, 11, stride=4, backend=backend, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2d(2, 2, ceil_mode=False, name="pool1"),
        Conv2d(96, 256, 5, backend=backend, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        MaxPool2d(2, 2, ceil_mode=False, name="pool2"),
        Conv2d(256, 512, 3, padding=1, backend=backend, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        Conv2d(512, 1024, 3, padding=1, backend=backend, rng=rng, name="conv4"),
        ReLU(name="relu4"),
        Conv2d(1024, 1024, 3, padding=1, backend=backend, rng=rng, name="conv5"),
        ReLU(name="relu5"),
        MaxPool2d(2, 2, ceil_mode=False, name="pool5"),
        Flatten(name="flatten"),
        Linear(1024 * 6 * 6, 3072, rng=rng, name="fc6"),
        ReLU(name="relu6"),
        Dropout(0.5, rng=rng, name="drop6"),
        Linear(3072, 4096, rng=rng, name="fc7"),
        ReLU(name="relu7"),
        Dropout(0.5, rng=rng, name="drop7"),
        Linear(4096, num_classes, rng=rng, name="fc8"),
        name="OverFeat",
    )
