"""Reference CNN architectures.

The four "typical real-life CNN models" the paper breaks down in
Fig. 2 — AlexNet, GoogLeNet, OverFeat and VGG — plus LeNet-5, the
architecture the paper uses to introduce CNNs (its Fig. 1).

Every model is a real trainable network built from :mod:`repro.nn`
layers; :func:`model_registry` maps the paper's names to constructors.
"""

from .lenet5 import lenet5
from .alexnet import alexnet
from .vgg import vgg19, vgg16
from .overfeat import overfeat
from .googlenet import googlenet
from .resnet import resnet18, resnet34

#: name -> (constructor, canonical input shape (C, H, W)) for the four
#: Fig. 2 models.
FIG2_MODELS = {
    "GoogLeNet": (googlenet, (3, 224, 224)),
    "VGG": (vgg19, (3, 224, 224)),
    "OverFeat": (overfeat, (3, 231, 231)),
    "AlexNet": (alexnet, (3, 227, 227)),
}


def model_registry():
    """All model constructors by name (the Fig. 2 four, LeNet-5, and
    the post-paper ResNet extensions)."""
    return {
        "LeNet-5": (lenet5, (1, 32, 32)),
        "AlexNet": (alexnet, (3, 227, 227)),
        "VGG-16": (vgg16, (3, 224, 224)),
        "VGG": (vgg19, (3, 224, 224)),
        "OverFeat": (overfeat, (3, 231, 231)),
        "GoogLeNet": (googlenet, (3, 224, 224)),
        "ResNet-18": (resnet18, (3, 224, 224)),
        "ResNet-34": (resnet34, (3, 224, 224)),
    }


__all__ = ["lenet5", "alexnet", "vgg16", "vgg19", "overfeat", "googlenet",
           "resnet18", "resnet34", "FIG2_MODELS", "model_registry"]
