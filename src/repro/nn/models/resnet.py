"""ResNet (He et al., CVPR 2016) — the next-generation extension model.

Published in the same year as the paper, ResNet is the architecture
the benchmarked frameworks had to carry next: all-3x3 convolutions
(squarely in the regime where the paper's small-kernel findings — and
the Winograd what-if — apply), batch normalisation after every
convolution, and residual ``Add`` merges.

Provided as an *extension* (not part of the Fig. 2 reproduction set):
``resnet18`` and ``resnet34`` built on the Graph container.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..add import Add
from ..batchnorm import BatchNorm2d
from ..conv_layer import Conv2d
from ..fc import Linear
from ..flatten import Flatten
from ..network import Graph
from ..pooling import AvgPool2d, MaxPool2d
from ..relu import ReLU

#: (blocks per stage) for the two basic-block variants.
_PLANS = {
    18: (2, 2, 2, 2),
    34: (3, 4, 6, 3),
}
_STAGE_CHANNELS = (64, 128, 256, 512)


def _conv_bn(g: Graph, name: str, src: str, in_ch: int, out_ch: int,
             kernel: int, stride: int, padding: int, backend, rng,
             relu: bool = True) -> str:
    g.add(f"{name}_conv", Conv2d(in_ch, out_ch, kernel, stride=stride,
                                 padding=padding, bias=False,
                                 backend=backend, rng=rng,
                                 name=f"{name}/conv"), src)
    g.add(f"{name}_bn", BatchNorm2d(out_ch, name=f"{name}/bn"),
          f"{name}_conv")
    if not relu:
        return f"{name}_bn"
    g.add(f"{name}_relu", ReLU(name=f"{name}/relu"), f"{name}_bn")
    return f"{name}_relu"


def _basic_block(g: Graph, name: str, src: str, in_ch: int, out_ch: int,
                 stride: int, backend, rng) -> str:
    """Two 3x3 conv-bn stages plus the residual shortcut."""
    a = _conv_bn(g, f"{name}a", src, in_ch, out_ch, 3, stride, 1,
                 backend, rng)
    b = _conv_bn(g, f"{name}b", a, out_ch, out_ch, 3, 1, 1, backend, rng,
                 relu=False)
    shortcut = src
    if stride != 1 or in_ch != out_ch:
        shortcut = _conv_bn(g, f"{name}s", src, in_ch, out_ch, 1, stride, 0,
                            backend, rng, relu=False)
    g.add(f"{name}_add", Add(name=f"{name}/add"), [b, shortcut])
    g.add(f"{name}_out", ReLU(name=f"{name}/relu_out"), f"{name}_add")
    return f"{name}_out"


def _resnet(depth: int, num_classes: int, backend, rng) -> Graph:
    blocks = _PLANS[depth]
    g = Graph(name=f"ResNet-{depth}")
    node = _conv_bn(g, "stem", "input", 3, 64, 7, 2, 3, backend, rng)
    g.add("stem_pool", MaxPool2d(3, 2, padding=1, ceil_mode=False,
                                 name="stem/pool"), node)
    node = "stem_pool"
    in_ch = 64
    for stage, (n_blocks, out_ch) in enumerate(zip(blocks, _STAGE_CHANNELS),
                                               start=1):
        for block in range(n_blocks):
            stride = 2 if (stage > 1 and block == 0) else 1
            node = _basic_block(g, f"s{stage}b{block}", node, in_ch, out_ch,
                                stride, backend, rng)
            in_ch = out_ch
    g.add("head_pool", AvgPool2d(7, 1, name="head/pool"), node)
    g.add("head_flat", Flatten(name="head/flatten"), "head_pool")
    g.add("head_fc", Linear(512, num_classes, rng=rng, name="head/fc"),
          "head_flat")
    return g


def resnet18(num_classes: int = 1000, backend=None, rng=None) -> Graph:
    """ResNet-18 for 224x224x3 inputs (~11.7 M parameters)."""
    return _resnet(18, num_classes, backend, rng)


def resnet34(num_classes: int = 1000, backend=None, rng=None) -> Graph:
    """ResNet-34 for 224x224x3 inputs (~21.8 M parameters)."""
    return _resnet(34, num_classes, backend, rng)
