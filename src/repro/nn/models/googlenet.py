"""GoogLeNet (Szegedy et al. 2015).

"22 layers with about 6.8 million parameters" (section I) — the
parameter count is asserted in the test suite.  Built on the
:class:`~repro.nn.network.Graph` container because inception modules
branch four ways and merge in a Concat layer (the Concat entries of
Fig. 2's breakdown).

The auxiliary classifier heads are omitted (they are training aids
the paper's runtime profile does not attribute) — the 6.8 M parameter
figure the paper quotes likewise excludes them.
"""

from __future__ import annotations

from ..concat import Concat
from ..conv_layer import Conv2d
from ..dropout import Dropout
from ..fc import Linear
from ..flatten import Flatten
from ..lrn import LocalResponseNorm
from ..network import Graph
from ..pooling import AvgPool2d, MaxPool2d
from ..relu import ReLU

#: Inception channel plans: (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5,
#: pool proj) — Table 1 of the GoogLeNet paper.
_INCEPTION_PLAN = {
    "3a": (64, 96, 128, 16, 32, 32),
    "3b": (128, 128, 192, 32, 96, 64),
    "4a": (192, 96, 208, 16, 48, 64),
    "4b": (160, 112, 224, 24, 64, 64),
    "4c": (128, 128, 256, 24, 64, 64),
    "4d": (112, 144, 288, 32, 64, 64),
    "4e": (256, 160, 320, 32, 128, 128),
    "5a": (256, 160, 320, 32, 128, 128),
    "5b": (384, 192, 384, 48, 128, 128),
}


def _inception(g: Graph, tag: str, input_node: str, in_ch: int,
               plan, backend, rng) -> str:
    """Add one inception module; returns the concat node name."""
    c1, r3, c3, r5, c5, pp = plan
    # 1x1 branch
    g.add(f"inc{tag}_1x1", Conv2d(in_ch, c1, 1, backend=backend, rng=rng,
                                  name=f"inc{tag}/1x1"), input_node)
    g.add(f"inc{tag}_1x1_relu", ReLU(name=f"inc{tag}/relu_1x1"), f"inc{tag}_1x1")
    # 3x3 branch
    g.add(f"inc{tag}_3x3r", Conv2d(in_ch, r3, 1, backend=backend, rng=rng,
                                   name=f"inc{tag}/3x3_reduce"), input_node)
    g.add(f"inc{tag}_3x3r_relu", ReLU(name=f"inc{tag}/relu_3x3r"), f"inc{tag}_3x3r")
    g.add(f"inc{tag}_3x3", Conv2d(r3, c3, 3, padding=1, backend=backend,
                                  rng=rng, name=f"inc{tag}/3x3"),
          f"inc{tag}_3x3r_relu")
    g.add(f"inc{tag}_3x3_relu", ReLU(name=f"inc{tag}/relu_3x3"), f"inc{tag}_3x3")
    # 5x5 branch
    g.add(f"inc{tag}_5x5r", Conv2d(in_ch, r5, 1, backend=backend, rng=rng,
                                   name=f"inc{tag}/5x5_reduce"), input_node)
    g.add(f"inc{tag}_5x5r_relu", ReLU(name=f"inc{tag}/relu_5x5r"), f"inc{tag}_5x5r")
    g.add(f"inc{tag}_5x5", Conv2d(r5, c5, 5, padding=2, backend=backend,
                                  rng=rng, name=f"inc{tag}/5x5"),
          f"inc{tag}_5x5r_relu")
    g.add(f"inc{tag}_5x5_relu", ReLU(name=f"inc{tag}/relu_5x5"), f"inc{tag}_5x5")
    # pool-projection branch
    g.add(f"inc{tag}_pool", MaxPool2d(3, 1, padding=1, name=f"inc{tag}/pool"),
          input_node)
    g.add(f"inc{tag}_proj", Conv2d(in_ch, pp, 1, backend=backend, rng=rng,
                                   name=f"inc{tag}/pool_proj"), f"inc{tag}_pool")
    g.add(f"inc{tag}_proj_relu", ReLU(name=f"inc{tag}/relu_proj"), f"inc{tag}_proj")
    # merge
    g.add(f"inc{tag}", Concat(name=f"inc{tag}/output"),
          [f"inc{tag}_1x1_relu", f"inc{tag}_3x3_relu",
           f"inc{tag}_5x5_relu", f"inc{tag}_proj_relu"])
    return f"inc{tag}"


def googlenet(num_classes: int = 1000, backend=None, rng=None) -> Graph:
    """Build GoogLeNet for 224x224x3 inputs."""
    g = Graph(name="GoogLeNet")
    g.add("conv1", Conv2d(3, 64, 7, stride=2, padding=3, backend=backend,
                          rng=rng, name="conv1/7x7_s2"))
    g.add("relu1", ReLU(name="conv1/relu"), "conv1")
    g.add("pool1", MaxPool2d(3, 2, name="pool1/3x3_s2"), "relu1")
    g.add("norm1", LocalResponseNorm(5, name="pool1/norm1"), "pool1")
    g.add("conv2r", Conv2d(64, 64, 1, backend=backend, rng=rng,
                           name="conv2/3x3_reduce"), "norm1")
    g.add("relu2r", ReLU(name="conv2/relu_reduce"), "conv2r")
    g.add("conv2", Conv2d(64, 192, 3, padding=1, backend=backend, rng=rng,
                          name="conv2/3x3"), "relu2r")
    g.add("relu2", ReLU(name="conv2/relu"), "conv2")
    g.add("norm2", LocalResponseNorm(5, name="conv2/norm2"), "relu2")
    g.add("pool2", MaxPool2d(3, 2, name="pool2/3x3_s2"), "norm2")

    node = "pool2"
    in_ch = 192
    for tag in ("3a", "3b"):
        node = _inception(g, tag, node, in_ch, _INCEPTION_PLAN[tag], backend, rng)
        p = _INCEPTION_PLAN[tag]
        in_ch = p[0] + p[2] + p[4] + p[5]
    g.add("pool3", MaxPool2d(3, 2, name="pool3/3x3_s2"), node)
    node = "pool3"
    for tag in ("4a", "4b", "4c", "4d", "4e"):
        node = _inception(g, tag, node, in_ch, _INCEPTION_PLAN[tag], backend, rng)
        p = _INCEPTION_PLAN[tag]
        in_ch = p[0] + p[2] + p[4] + p[5]
    g.add("pool4", MaxPool2d(3, 2, name="pool4/3x3_s2"), node)
    node = "pool4"
    for tag in ("5a", "5b"):
        node = _inception(g, tag, node, in_ch, _INCEPTION_PLAN[tag], backend, rng)
        p = _INCEPTION_PLAN[tag]
        in_ch = p[0] + p[2] + p[4] + p[5]

    g.add("pool5", AvgPool2d(7, 1, name="pool5/7x7_s1"), node)
    g.add("drop", Dropout(0.4, rng=rng, name="pool5/drop"), "pool5")
    g.add("flatten", Flatten(name="flatten"), "drop")
    g.add("fc", Linear(1024, num_classes, rng=rng, name="loss3/classifier"),
          "flatten")
    return g
