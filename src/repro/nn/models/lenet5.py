"""LeNet-5 (LeCun et al. 1998) — the paper's Fig. 1 example.

Convolution, pooling and two fully-connected layers, "stacked by
convolutional layer, pooling layer and two fully connected layers"
(section II-A).  Sized for 32x32 single-channel digit images.
"""

from __future__ import annotations

from ..conv_layer import Conv2d
from ..fc import Linear
from ..flatten import Flatten
from ..network import Sequential
from ..pooling import MaxPool2d
from ..relu import ReLU


def lenet5(num_classes: int = 10, backend=None, rng=None) -> Sequential:
    """Build LeNet-5.

    Parameters
    ----------
    num_classes:
        Output classes (10 for digits).
    backend:
        Convolution backend passed to every :class:`Conv2d` (any
        strategy or implementation name).
    rng:
        Weight-initialisation seed.
    """
    return Sequential(
        Conv2d(1, 6, 5, backend=backend, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        MaxPool2d(2, 2, name="pool1"),
        Conv2d(6, 16, 5, backend=backend, rng=rng, name="conv2"),
        ReLU(name="relu2"),
        MaxPool2d(2, 2, name="pool2"),
        Flatten(name="flatten"),
        Linear(16 * 5 * 5, 120, rng=rng, name="fc3"),
        ReLU(name="relu3"),
        Linear(120, 84, rng=rng, name="fc4"),
        ReLU(name="relu4"),
        Linear(84, num_classes, rng=rng, name="fc5"),
        name="LeNet-5",
    )
