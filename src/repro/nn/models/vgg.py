"""VGG (Simonyan & Zisserman 2014).

The paper quotes VGG-19: "19 layers (16 convolutional layers and 3
fully-connected layers) and over 144 million parameters" — both
figures are asserted in the test suite.  VGG-16 is provided as well.
"""

from __future__ import annotations

from typing import Sequence

from ..conv_layer import Conv2d
from ..dropout import Dropout
from ..fc import Linear
from ..flatten import Flatten
from ..network import Sequential
from ..pooling import MaxPool2d
from ..relu import ReLU

#: Channel plan per block: (convs in block, out channels).
_VGG16_PLAN = ((2, 64), (2, 128), (3, 256), (3, 512), (3, 512))
_VGG19_PLAN = ((2, 64), (2, 128), (4, 256), (4, 512), (4, 512))


def _vgg(plan: Sequence, num_classes: int, backend, rng, name: str) -> Sequential:
    model = Sequential(name=name)
    in_ch = 3
    for block, (convs, out_ch) in enumerate(plan, start=1):
        for i in range(1, convs + 1):
            model.add(Conv2d(in_ch, out_ch, 3, padding=1, backend=backend,
                             rng=rng, name=f"conv{block}_{i}"))
            model.add(ReLU(name=f"relu{block}_{i}"))
            in_ch = out_ch
        model.add(MaxPool2d(2, 2, name=f"pool{block}"))
    model.add(Flatten(name="flatten"))
    model.add(Linear(512 * 7 * 7, 4096, rng=rng, name="fc6"))
    model.add(ReLU(name="relu6"))
    model.add(Dropout(0.5, rng=rng, name="drop6"))
    model.add(Linear(4096, 4096, rng=rng, name="fc7"))
    model.add(ReLU(name="relu7"))
    model.add(Dropout(0.5, rng=rng, name="drop7"))
    model.add(Linear(4096, num_classes, rng=rng, name="fc8"))
    return model


def vgg16(num_classes: int = 1000, backend=None, rng=None) -> Sequential:
    """VGG-16 (configuration D) for 224x224x3 inputs."""
    return _vgg(_VGG16_PLAN, num_classes, backend, rng, "VGG-16")


def vgg19(num_classes: int = 1000, backend=None, rng=None) -> Sequential:
    """VGG-19 (configuration E) for 224x224x3 inputs — the variant the
    paper cites."""
    return _vgg(_VGG19_PLAN, num_classes, backend, rng, "VGG-19")
