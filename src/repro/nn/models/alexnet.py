"""AlexNet (Krizhevsky et al. 2012), single-tower Caffe variant.

"8 layers (5 convolutional layers and 3 fully-connected layers) and
more than 60 million parameters" (section I) — the parameter count is
asserted in the test suite.
"""

from __future__ import annotations

from ..conv_layer import Conv2d
from ..dropout import Dropout
from ..fc import Linear
from ..flatten import Flatten
from ..lrn import LocalResponseNorm
from ..network import Sequential
from ..pooling import MaxPool2d
from ..relu import ReLU


def alexnet(num_classes: int = 1000, backend=None, rng=None,
            grouped: bool = False) -> Sequential:
    """Build AlexNet for 227x227x3 inputs.

    ``grouped=True`` restores the original paper's two-tower grouping
    (groups=2 on conv2/conv4/conv5 — the layers Krizhevsky split
    across his two GTX 580s); the default is the single-tower Caffe
    variant the ICPP paper's era benchmarked.
    """
    g = 2 if grouped else 1
    return Sequential(
        Conv2d(3, 96, 11, stride=4, backend=backend, rng=rng, name="conv1"),
        ReLU(name="relu1"),
        LocalResponseNorm(5, name="norm1"),
        MaxPool2d(3, 2, name="pool1"),
        Conv2d(96, 256, 5, padding=2, groups=g, backend=backend, rng=rng,
               name="conv2"),
        ReLU(name="relu2"),
        LocalResponseNorm(5, name="norm2"),
        MaxPool2d(3, 2, name="pool2"),
        Conv2d(256, 384, 3, padding=1, backend=backend, rng=rng, name="conv3"),
        ReLU(name="relu3"),
        Conv2d(384, 384, 3, padding=1, groups=g, backend=backend, rng=rng,
               name="conv4"),
        ReLU(name="relu4"),
        Conv2d(384, 256, 3, padding=1, groups=g, backend=backend, rng=rng,
               name="conv5"),
        ReLU(name="relu5"),
        MaxPool2d(3, 2, name="pool5"),
        Flatten(name="flatten"),
        Linear(256 * 6 * 6, 4096, rng=rng, name="fc6"),
        ReLU(name="relu6"),
        Dropout(0.5, rng=rng, name="drop6"),
        Linear(4096, 4096, rng=rng, name="fc7"),
        ReLU(name="relu7"),
        Dropout(0.5, rng=rng, name="drop7"),
        Linear(4096, num_classes, rng=rng, name="fc8"),
        name="AlexNet",
    )
