"""Batch normalisation (Ioffe & Szegedy 2015).

Contemporaneous with the paper's study window (GoogLeNet v2 trained
with it), and the layer that reshaped conv-layer benchmarking soon
after — included so the NN substrate can express post-2015 models.

Implements the standard per-channel 2-D batch norm with exact analytic
gradients and running statistics for evaluation mode.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from .module import Layer, Parameter, check_nchw


class BatchNorm2d(Layer):
    """Per-channel batch normalisation over (N, H, W).

    Training mode normalises with batch statistics and updates the
    running mean/variance with exponential moving averages; eval mode
    uses the running statistics.
    """

    layer_type = "BatchNorm"

    def __init__(self, channels: int, eps: float = 1e-5,
                 momentum: float = 0.1, name: str = ""):
        super().__init__(name or "batchnorm")
        if channels <= 0:
            raise ShapeError(f"channels must be positive, got {channels}")
        if eps <= 0:
            raise ShapeError(f"eps must be positive, got {eps}")
        if not (0.0 < momentum <= 1.0):
            raise ShapeError(f"momentum must be in (0,1], got {momentum}")
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels), name=f"{self.name}.gamma")
        self.beta = Parameter(np.zeros(channels), name=f"{self.name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        if len(input_shape) != 4 or input_shape[1] != self.channels:
            raise ShapeError(
                f"{self.name}: expected (b, {self.channels}, h, w), "
                f"got {input_shape}")
        return tuple(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x, self)
        if x.shape[1] != self.channels:
            raise ShapeError(
                f"{self.name}: expected {self.channels} channels, "
                f"got {x.shape[1]}")
        if self.training:
            axes = (0, 2, 3)
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var)
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._xhat = xhat
        self._inv_std = inv_std
        self._train_stats = self.training
        return (self.gamma.value[None, :, None, None] * xhat
                + self.beta.value[None, :, None, None])

    def backward(self, dy: np.ndarray) -> np.ndarray:
        xhat, inv_std = self._xhat, self._inv_std
        axes = (0, 2, 3)
        m = dy.shape[0] * dy.shape[2] * dy.shape[3]

        self.gamma.grad += (dy * xhat).sum(axis=axes)
        self.beta.grad += dy.sum(axis=axes)

        g = self.gamma.value[None, :, None, None]
        if not self._train_stats:
            # Eval mode: statistics are constants.
            return dy * g * inv_std[None, :, None, None]
        dxhat = dy * g
        # Standard batch-norm backward (statistics depend on x).
        term1 = dxhat
        term2 = dxhat.mean(axis=axes)[None, :, None, None]
        term3 = xhat * (dxhat * xhat).mean(axis=axes)[None, :, None, None]
        return (term1 - term2 - term3) * inv_std[None, :, None, None]

    def parameters(self):
        return [self.gamma, self.beta]
