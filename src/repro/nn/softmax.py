"""Softmax and the softmax-cross-entropy loss head."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    z = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy on integer class labels.

    ``forward`` returns the mean loss; ``backward`` the gradient
    w.r.t. the logits (``(p - onehot) / batch``).
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ShapeError(f"expected (batch, classes) logits, got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape != (logits.shape[0],):
            raise ShapeError(
                f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
            )
        if labels.min() < 0 or labels.max() >= logits.shape[1]:
            raise ShapeError("labels out of range")
        self._probs = softmax(logits)
        self._labels = labels
        picked = self._probs[np.arange(len(labels)), labels]
        return float(-np.log(np.maximum(picked, 1e-300)).mean())

    def backward(self) -> np.ndarray:
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)

    def predictions(self) -> np.ndarray:
        """argmax class of the last forward pass."""
        return self._probs.argmax(axis=1)
