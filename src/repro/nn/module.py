"""Layer base class and parameter container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import ShapeError


class Parameter:
    """A learnable tensor and its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = ""):
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return self.value.size

    def zero_grad(self) -> None:
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Parameter({self.name or 'unnamed'}, shape={self.value.shape})"


class Layer:
    """Base class for all layers.

    Subclasses implement ``forward`` (stashing whatever the backward
    pass needs on ``self``) and ``backward`` (accumulating parameter
    gradients and returning the input gradient).  ``layer_type`` is
    the Fig. 2 grouping label ("Conv", "Pooling", "ReLU", "FC",
    "Concat", ...).
    """

    layer_type = "Other"

    def __init__(self, name: str = ""):
        self.name = name or type(self).__name__
        self.training = True

    # -- interface ----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dy: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        """Learnable parameters (default: none)."""
        return []

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Shape arithmetic without computing anything; used by model
        inspection and the runtime simulator."""
        raise NotImplementedError

    # -- conveniences ----------------------------------------------------------

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Layer":
        self.training = mode
        return self

    def eval(self) -> "Layer":
        return self.train(False)

    def parameter_count(self) -> int:
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


def check_nchw(x: np.ndarray, layer: Layer) -> None:
    """Common input validation for spatial layers."""
    if x.ndim != 4:
        raise ShapeError(
            f"{layer.name}: expected NCHW input, got ndim={x.ndim}"
        )
