"""Network containers: a sequential stack and a DAG graph.

``Sequential`` covers LeNet-5 / AlexNet / VGG / OverFeat;
``Graph`` adds the branch-and-concat structure GoogLeNet's inception
modules need (layers are inserted with named inputs; ``Concat`` nodes
take several).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ShapeError
from .concat import Concat
from .module import Layer, Parameter


def _multi_input(layer: Layer) -> bool:
    """Layers that consume a *list* of inputs (Concat, Add)."""
    return getattr(layer, "multi_input", False)


class Sequential(Layer):
    """A linear stack of layers."""

    layer_type = "Container"

    def __init__(self, *layers: Layer, name: str = ""):
        super().__init__(name or "sequential")
        self.layers: List[Layer] = list(layers)
        for i, layer in enumerate(self.layers):
            if not isinstance(layer, Layer):
                raise TypeError(f"layer {i} is not a Layer: {layer!r}")

    def add(self, layer: Layer) -> "Sequential":
        if not isinstance(layer, Layer):
            raise TypeError(f"not a Layer: {layer!r}")
        self.layers.append(layer)
        return self

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dy: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dy = layer.backward(dy)
        return dy

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def train(self, mode: bool = True) -> "Sequential":
        super().train(mode)
        for layer in self.layers:
            layer.train(mode)
        return self

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        shape = tuple(input_shape)
        for layer in self.layers:
            shape = layer.output_shape(shape)
        return shape

    def shape_walk(self, input_shape: Tuple[int, ...]) -> List[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]]:
        """(layer, in_shape, out_shape) for every layer — the model
        inventory the Fig. 2 simulator consumes."""
        walk = []
        shape = tuple(input_shape)
        for layer in self.layers:
            out = layer.output_shape(shape)
            walk.append((layer, shape, out))
            shape = out
        return walk

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class _Node:
    def __init__(self, name: str, layer: Layer, inputs: Sequence[str]):
        self.name = name
        self.layer = layer
        self.inputs = list(inputs)


INPUT = "input"


class Graph(Layer):
    """A DAG of layers.

    Nodes must be added after their inputs (insertion order is the
    topological order).  The special name ``"input"`` denotes the graph
    input; the last added node is the output unless ``set_output`` is
    called.
    """

    layer_type = "Container"

    def __init__(self, name: str = ""):
        super().__init__(name or "graph")
        self._nodes: Dict[str, _Node] = {}
        self._order: List[str] = []
        self._output: Optional[str] = None

    def add(self, name: str, layer: Layer,
            inputs: Union[str, Sequence[str]] = INPUT) -> "Graph":
        if name == INPUT or name in self._nodes:
            raise ShapeError(f"duplicate or reserved node name {name!r}")
        if isinstance(inputs, str):
            inputs = [inputs]
        if not inputs:
            raise ShapeError(f"node {name!r} needs at least one input")
        for src in inputs:
            if src != INPUT and src not in self._nodes:
                raise ShapeError(
                    f"node {name!r} consumes undefined node {src!r} "
                    f"(insertion order must be topological)"
                )
        if len(inputs) > 1 and not _multi_input(layer):
            raise ShapeError(
                f"node {name!r}: only multi-input layers (Concat, Add) "
                f"accept multiple inputs"
            )
        self._nodes[name] = _Node(name, layer, inputs)
        self._order.append(name)
        self._output = name
        return self

    def set_output(self, name: str) -> "Graph":
        if name not in self._nodes:
            raise ShapeError(f"unknown node {name!r}")
        self._output = name
        return self

    @property
    def output_node(self) -> str:
        if self._output is None:
            raise ShapeError("graph has no nodes")
        return self._output

    # -- execution ----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        values: Dict[str, np.ndarray] = {INPUT: x}
        for name in self._order:
            node = self._nodes[name]
            ins = [values[s] for s in node.inputs]
            if _multi_input(node.layer):
                values[name] = node.layer.forward(ins)
            else:
                values[name] = node.layer.forward(ins[0])
        self._consumers = self._build_consumers()
        return values[self.output_node]

    def _build_consumers(self) -> Dict[str, List[Tuple[str, int]]]:
        consumers: Dict[str, List[Tuple[str, int]]] = {}
        for name in self._order:
            for slot, src in enumerate(self._nodes[name].inputs):
                consumers.setdefault(src, []).append((name, slot))
        return consumers

    def backward(self, dy: np.ndarray) -> np.ndarray:
        grads: Dict[str, np.ndarray] = {self.output_node: dy}
        for name in reversed(self._order):
            node = self._nodes[name]
            if name not in grads:
                continue  # dead branch (not on a path to the output)
            gout = node.layer.backward(grads.pop(name))
            gins = gout if _multi_input(node.layer) else [gout]
            for src, g in zip(node.inputs, gins):
                if src in grads:
                    grads[src] = grads[src] + g
                else:
                    grads[src] = g
        if INPUT not in grads:
            raise ShapeError("graph output is not connected to the input")
        return grads[INPUT]

    # -- bookkeeping ----------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for name in self._order:
            params.extend(self._nodes[name].layer.parameters())
        return params

    def train(self, mode: bool = True) -> "Graph":
        super().train(mode)
        for name in self._order:
            self._nodes[name].layer.train(mode)
        return self

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        shapes = self._shape_map(input_shape)
        return shapes[self.output_node]

    def _shape_map(self, input_shape: Tuple[int, ...]) -> Dict[str, Tuple[int, ...]]:
        shapes: Dict[str, Tuple[int, ...]] = {INPUT: tuple(input_shape)}
        for name in self._order:
            node = self._nodes[name]
            ins = [shapes[s] for s in node.inputs]
            if _multi_input(node.layer):
                shapes[name] = node.layer.output_shape(ins)
            else:
                shapes[name] = node.layer.output_shape(ins[0])
        return shapes

    def shape_walk(self, input_shape: Tuple[int, ...]) -> List[Tuple[Layer, Tuple[int, ...], Tuple[int, ...]]]:
        """(layer, in_shape, out_shape) per node, in topological order."""
        shapes = self._shape_map(input_shape)
        walk = []
        for name in self._order:
            node = self._nodes[name]
            in_shape = shapes[node.inputs[0]]
            if _multi_input(node.layer):
                in_shape = [shapes[s] for s in node.inputs]
            walk.append((node.layer, in_shape, shapes[name]))
        return walk

    def __len__(self) -> int:
        return len(self._order)
