"""Model checkpointing.

Saves and restores the parameters (and batch-norm running statistics)
of any layer tree as a NumPy ``.npz`` archive — enough to pause and
resume the training examples, or to hand a trained LeNet-5 from one
conv backend to another.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..errors import ShapeError
from .module import Layer


def state_dict(model: Layer) -> Dict[str, np.ndarray]:
    """Collect all parameters (by their unique names) plus running
    statistics of any batch-norm layers."""
    state: Dict[str, np.ndarray] = {}
    for i, p in enumerate(model.parameters()):
        key = p.name or f"param_{i}"
        if key in state:
            raise ShapeError(f"duplicate parameter name {key!r}")
        state[key] = p.value
    for layer in _walk_layers(model):
        if type(layer).__name__ == "BatchNorm2d":
            state[f"{layer.name}.running_mean"] = layer.running_mean
            state[f"{layer.name}.running_var"] = layer.running_var
    return state


def _walk_layers(model: Layer):
    """Yield every layer in a container tree (Sequential / Graph)."""
    yield model
    if hasattr(model, "layers"):
        for child in model.layers:
            yield from _walk_layers(child)
    if hasattr(model, "_nodes"):
        for name in getattr(model, "_order", []):
            yield from _walk_layers(model._nodes[name].layer)


def load_state_dict(model: Layer, state: Dict[str, np.ndarray],
                    strict: bool = True) -> None:
    """Write a state dict back into a model (in place)."""
    seen = set()
    for i, p in enumerate(model.parameters()):
        key = p.name or f"param_{i}"
        if key not in state:
            if strict:
                raise ShapeError(f"missing parameter {key!r} in checkpoint")
            continue
        value = np.asarray(state[key])
        if value.shape != p.value.shape:
            raise ShapeError(
                f"{key}: checkpoint shape {value.shape} != model shape "
                f"{p.value.shape}")
        p.value[...] = value
        seen.add(key)
    for layer in _walk_layers(model):
        if type(layer).__name__ == "BatchNorm2d":
            for attr in ("running_mean", "running_var"):
                key = f"{layer.name}.{attr}"
                if key in state:
                    getattr(layer, attr)[...] = state[key]
                    seen.add(key)
                elif strict:
                    raise ShapeError(f"missing statistic {key!r}")
    if strict:
        extra = set(state) - seen
        if extra:
            raise ShapeError(f"unused checkpoint entries: {sorted(extra)}")


def save_weights(model: Layer, path: str) -> None:
    """Serialise a model's state to an ``.npz`` archive."""
    np.savez(path, **state_dict(model))


def load_weights(model: Layer, path: str, strict: bool = True) -> None:
    """Restore a model's state from an ``.npz`` archive."""
    with np.load(path) as data:
        load_state_dict(model, dict(data.items()), strict=strict)
