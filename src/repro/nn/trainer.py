"""SGD optimiser and a minimal training loop.

The BP training process of section II-A: "applies BP algorithm to
adjust learnable kernels so as to minimize the cost function".  Used
by the LeNet-5 example and the integration tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import ConvergenceError
from ..obs.context import get_obs
from .module import Layer, Parameter
from .softmax import SoftmaxCrossEntropy


class SGD:
    """Stochastic gradient descent with classical momentum and L2
    weight decay."""

    def __init__(self, parameters: List[Parameter], lr: float = 0.01,
                 momentum: float = 0.9, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum must be in [0,1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.value
            v *= self.momentum
            v -= self.lr * g
            p.value += v

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


@dataclass
class TrainResult:
    """History of one training run."""

    losses: List[float] = field(default_factory=list)
    accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.losses[-1]

    @property
    def final_accuracy(self) -> float:
        return self.accuracies[-1]


class Trainer:
    """Couples a model, loss and optimiser into a train/eval loop."""

    def __init__(self, model: Layer, optimizer: SGD,
                 loss: Optional[SoftmaxCrossEntropy] = None):
        self.model = model
        self.optimizer = optimizer
        self.loss = loss or SoftmaxCrossEntropy()

    def train_step(self, x: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """One iteration: forward, backward, update.  Returns
        (loss, batch accuracy).

        Reports into the active observability context: step / sample
        counters and loss / accuracy histograms on the metrics
        registry, plus a ``train.step`` span tree (forward → backward
        → update) when a tracer is attached.  Spans mark structure and
        order — real training runs on the host, so they carry no
        simulated duration.
        """
        obs = get_obs()
        self.model.train(True)
        self.optimizer.zero_grad()
        with obs.tracer.span("train.step", cat="nn", batch=x.shape[0]):
            with obs.tracer.span("train.forward", cat="nn"):
                logits = self.model.forward(x)
                loss = self.loss.forward(logits, labels)
            if math.isnan(loss) or math.isinf(loss):
                raise ConvergenceError(f"loss diverged: {loss}")
            with obs.tracer.span("train.backward", cat="nn"):
                self.model.backward(self.loss.backward())
            with obs.tracer.span("train.update", cat="nn"):
                self.optimizer.step()
        acc = float((self.loss.predictions() == labels).mean())
        obs.registry.counter("train_steps_total").inc()
        obs.registry.counter("train_samples_total").inc(x.shape[0])
        obs.registry.histogram("train_loss").observe(loss)
        obs.registry.histogram("train_batch_accuracy").observe(acc)
        return loss, acc

    def fit(self, batches: Iterable[Tuple[np.ndarray, np.ndarray]],
            log_every: int = 0,
            callback: Optional[Callable[[int, float, float], None]] = None
            ) -> TrainResult:
        """Train over an iterable of (x, labels) batches."""
        result = TrainResult()
        for step, (x, labels) in enumerate(batches):
            loss, acc = self.train_step(x, labels)
            result.losses.append(loss)
            result.accuracies.append(acc)
            if callback is not None:
                callback(step, loss, acc)
            if log_every and step % log_every == 0:  # pragma: no cover
                print(f"step {step:5d}  loss {loss:.4f}  acc {acc:.3f}")
        if not result.losses:
            raise ValueError("fit received no batches")
        return result

    def evaluate(self, x: np.ndarray, labels: np.ndarray) -> Tuple[float, float]:
        """Loss and accuracy on one evaluation batch (no updates)."""
        self.model.train(False)
        logits = self.model.forward(x)
        loss = self.loss.forward(logits, labels)
        acc = float((self.loss.predictions() == labels).mean())
        self.model.train(True)
        return loss, acc
