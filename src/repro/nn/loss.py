"""Loss interface (thin alias module kept for API symmetry)."""

from __future__ import annotations

from .softmax import SoftmaxCrossEntropy

#: The loss the examples and trainer use.
Loss = SoftmaxCrossEntropy

__all__ = ["Loss", "SoftmaxCrossEntropy"]
