"""Convolutional layer — "the central part in CNNs" (section II-A).

The numerical backend is pluggable: any of the seven
:mod:`repro.frameworks` implementations (or a bare strategy name) can
carry the arithmetic, which is how the examples demonstrate that
swapping implementations changes speed, not results.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..config import ConvConfig
from ..conv import unrolled
from ..errors import ShapeError
from ..rng import make_rng
from ..tensor.shapes import conv_output_size
from .module import Layer, Parameter, check_nchw

# Lazy import of frameworks to keep nn importable standalone.
_STRATEGIES = {"direct", "unrolled", "fft"}


def _resolve_backend(backend):
    """Accept None (default unrolled), a strategy name (``direct``,
    ``unrolled``, ``fft``, ``winograd``), an implementation name, or a
    ConvImplementation / strategy-module instance."""
    if backend is None:
        return unrolled
    if isinstance(backend, str):
        from ..conv.registry import STRATEGIES, get_strategy
        if backend in STRATEGIES:
            return get_strategy(backend)
        from ..frameworks.registry import get_implementation
        return get_implementation(backend)
    return backend  # assume ConvImplementation-like or strategy module


class Conv2d(Layer):
    """2-D convolution with square kernels.

    Parameters
    ----------
    in_channels, out_channels, kernel_size, stride, padding:
        Usual convolution geometry.
    backend:
        ``None``/``"unrolled"``/``"direct"``/``"fft"`` for a bare
        strategy, or an implementation name (``"cudnn"``, ``"fbfft"``,
        ...) / instance from :mod:`repro.frameworks`.
    rng:
        Seed or generator for weight initialisation (He et al. scaling).
    """

    layer_type = "Conv"

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 groups: int = 1, backend=None, rng=None, name: str = ""):
        super().__init__(name or f"conv{kernel_size}x{kernel_size}")
        if in_channels <= 0 or out_channels <= 0 or kernel_size <= 0:
            raise ShapeError("channels and kernel_size must be positive")
        if stride <= 0:
            raise ShapeError(f"stride must be positive, got {stride}")
        if padding < 0:
            raise ShapeError(f"padding must be non-negative, got {padding}")
        if groups <= 0:
            raise ShapeError(f"groups must be positive, got {groups}")
        if in_channels % groups or out_channels % groups:
            raise ShapeError(
                f"channels ({in_channels} -> {out_channels}) must divide "
                f"into {groups} groups")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.backend = _resolve_backend(backend)

        gen = make_rng(rng)
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            gen.standard_normal((out_channels, in_channels // groups,
                                 kernel_size, kernel_size)) * scale,
            name=f"{self.name}.weight")
        self.bias = Parameter(np.zeros(out_channels),
                              name=f"{self.name}.bias") if bias else None
        self._x: Optional[np.ndarray] = None

    # -- geometry ----------------------------------------------------------

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        b, c, h, w = input_shape
        if c != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected {self.in_channels} channels, got {c}"
            )
        oh = conv_output_size(h, self.kernel_size, self.stride, self.padding)
        ow = conv_output_size(w, self.kernel_size, self.stride, self.padding)
        return (b, self.out_channels, oh, ow)

    def conv_config(self, input_shape: Tuple[int, ...]) -> ConvConfig:
        """The benchmark 5-tuple view of this layer on a given input
        (requires square spatial dims).

        Grouping is not part of the paper's 5-tuple space; grouped
        layers report the full-channel configuration, so simulated
        times for them are conservative (up to ``groups`` x high).
        """
        b, c, h, w = input_shape
        if h != w:
            raise ShapeError(f"{self.name}: ConvConfig requires square input, got {(h, w)}")
        return ConvConfig(batch=b, input_size=h, filters=self.out_channels,
                          kernel_size=self.kernel_size, stride=self.stride,
                          channels=c, padding=self.padding)

    # -- compute -----------------------------------------------------------

    def _group_slices(self):
        """(input channel slice, output channel slice) per group."""
        cin = self.in_channels // self.groups
        cout = self.out_channels // self.groups
        for g in range(self.groups):
            yield (slice(g * cin, (g + 1) * cin),
                   slice(g * cout, (g + 1) * cout))

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x, self)
        self.output_shape(x.shape)  # validates channels
        self._x = x
        bias = self.bias.value if self.bias is not None else None
        if self.groups == 1:
            return self.backend.forward(x, self.weight.value, bias,
                                        self.stride, self.padding)
        # Grouped convolution (AlexNet's historical two-tower split):
        # each group convolves its own channel slice.
        parts = [
            self.backend.forward(x[:, ci], self.weight.value[co],
                                 bias[co] if bias is not None else None,
                                 self.stride, self.padding)
            for ci, co in self._group_slices()
        ]
        return np.concatenate(parts, axis=1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError(f"{self.name}: backward before forward")
        x = self._x
        k = self.kernel_size
        if self.groups == 1:
            self.weight.grad += self.backend.backward_weights(
                dy, x, (k, k), self.stride, self.padding)
            if self.bias is not None:
                self.bias.grad += dy.sum(axis=(0, 2, 3))
            return self.backend.backward_input(
                dy, self.weight.value, (x.shape[2], x.shape[3]),
                self.stride, self.padding)
        if self.bias is not None:
            self.bias.grad += dy.sum(axis=(0, 2, 3))
        dx = np.empty_like(x)
        for ci, co in self._group_slices():
            self.weight.grad[co] += self.backend.backward_weights(
                dy[:, co], x[:, ci], (k, k), self.stride, self.padding)
            dx[:, ci] = self.backend.backward_input(
                dy[:, co], self.weight.value[co],
                (x.shape[2], x.shape[3]), self.stride, self.padding)
        return dx

    def parameters(self):
        return [self.weight] + ([self.bias] if self.bias is not None else [])
