"""Finite-difference gradient checking — public API.

The test suite uses this to validate every layer; it is exported so
downstream users extending the layer zoo can validate their backward
passes the same way::

    from repro.nn.gradcheck import check_gradients
    check_gradients(MyLayer(...), x, rng=0)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import RngLike, make_rng
from .module import Layer


def numeric_input_gradient(layer: Layer, x: np.ndarray, dy: np.ndarray,
                           eps: float = 1e-6) -> np.ndarray:
    """``d<dy, layer(x)> / dx`` by central differences.

    O(x.size) forward passes — use on small tensors only.
    """
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    grad = np.zeros_like(x, dtype=float)
    flat_g = grad.reshape(-1)
    flat_x = x.reshape(-1)
    for i in range(flat_x.size):
        orig = flat_x[i]
        flat_x[i] = orig + eps
        plus = float((layer.forward(x) * dy).sum())
        flat_x[i] = orig - eps
        minus = float((layer.forward(x) * dy).sum())
        flat_x[i] = orig
        flat_g[i] = (plus - minus) / (2.0 * eps)
    return grad


def numeric_param_gradient(layer: Layer, param, x: np.ndarray,
                           dy: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """``d<dy, layer(x)> / dparam`` by central differences."""
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    grad = np.zeros_like(param.value)
    flat_g = grad.reshape(-1)
    flat_v = param.value.reshape(-1)
    for i in range(flat_v.size):
        orig = flat_v[i]
        flat_v[i] = orig + eps
        plus = float((layer.forward(x) * dy).sum())
        flat_v[i] = orig - eps
        minus = float((layer.forward(x) * dy).sum())
        flat_v[i] = orig
        flat_g[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(layer: Layer, x: np.ndarray, rng: RngLike = None,
                    rtol: float = 1e-4, atol: float = 1e-6,
                    eps: float = 1e-6) -> None:
    """Assert analytic gradients match central differences.

    Checks the input gradient and every parameter gradient of
    ``layer`` at point ``x`` against a random cotangent.  Raises
    ``AssertionError`` with the offending tensor's name on mismatch.
    """
    gen = make_rng(rng)
    y = layer.forward(x)
    dy = gen.standard_normal(y.shape)
    layer.zero_grad()
    layer.forward(x)  # refresh the stash
    dx = layer.backward(dy)
    np.testing.assert_allclose(
        dx, numeric_input_gradient(layer, x, dy, eps), rtol=rtol, atol=atol,
        err_msg=f"{layer.name}: input gradient mismatch")
    for p in layer.parameters():
        np.testing.assert_allclose(
            p.grad, numeric_param_gradient(layer, p, x, dy, eps),
            rtol=rtol, atol=atol,
            err_msg=f"{layer.name}: gradient mismatch for {p.name}")
