"""Elementwise addition of branches — the residual connection.

Like :class:`~repro.nn.concat.Concat`, this is a multi-input layer
routed by the :class:`~repro.nn.network.Graph` container; unlike
Concat, all inputs must share the full shape and the gradient passes
through unchanged to every branch.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ShapeError
from .module import Layer


class Add(Layer):
    """Sum a list of same-shaped tensors (residual merge)."""

    layer_type = "Add"
    multi_input = True

    def forward(self, xs: Sequence[np.ndarray]) -> np.ndarray:
        if not xs:
            raise ShapeError(f"{self.name}: needs at least one input")
        base = xs[0].shape
        for x in xs[1:]:
            if x.shape != base:
                raise ShapeError(
                    f"{self.name}: all inputs must share a shape; got "
                    f"{[x.shape for x in xs]}"
                )
        self._n = len(xs)
        out = xs[0].copy()
        for x in xs[1:]:
            out += x
        return out

    def backward(self, dy: np.ndarray) -> List[np.ndarray]:
        return [dy] * self._n

    def output_shape(self, input_shapes: Sequence[Tuple[int, ...]]) -> Tuple[int, ...]:
        base = tuple(input_shapes[0])
        for s in input_shapes[1:]:
            if tuple(s) != base:
                raise ShapeError(
                    f"{self.name}: all inputs must share a shape; got "
                    f"{list(input_shapes)}"
                )
        return base
