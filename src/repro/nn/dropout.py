"""Inverted dropout."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError
from ..rng import make_rng
from .module import Layer


class Dropout(Layer):
    """Inverted dropout: activations are scaled by ``1/(1-p)`` at train
    time so evaluation is a pass-through."""

    layer_type = "Dropout"

    def __init__(self, p: float = 0.5, rng=None, name: str = ""):
        super().__init__(name or "dropout")
        if not (0.0 <= p < 1.0):
            raise ShapeError(f"drop probability must be in [0,1), got {p}")
        self.p = p
        self._rng = make_rng(rng)

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(input_shape)

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dy
        return dy * self._mask
