"""Pooling layers.

Max and average pooling with Caffe-style ceil-mode geometry (the
models the paper profiles are Caffe-era definitions).  The forward
pass materialises the pooling windows as strided views; max pooling
stores the argmax for an exact backward scatter.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from ..errors import ShapeError
from ..tensor.shapes import pool_output_size
from .module import Layer, check_nchw


class _Pool2d(Layer):
    layer_type = "Pooling"

    def __init__(self, window: int, stride: Optional[int] = None,
                 padding: int = 0, ceil_mode: bool = True, name: str = ""):
        super().__init__(name)
        if window <= 0:
            raise ShapeError(f"window must be positive, got {window}")
        self.window = window
        self.stride = stride if stride is not None else window
        if self.stride <= 0:
            raise ShapeError(f"stride must be positive, got {self.stride}")
        if padding < 0:
            raise ShapeError(f"padding must be non-negative, got {padding}")
        if padding >= window:
            raise ShapeError("padding must be smaller than the window")
        self.padding = padding
        self.ceil_mode = ceil_mode

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        b, c, h, w = input_shape
        oh = pool_output_size(h, self.window, self.stride, self.padding,
                              self.ceil_mode)
        ow = pool_output_size(w, self.window, self.stride, self.padding,
                              self.ceil_mode)
        return (b, c, oh, ow)

    def _padded(self, x: np.ndarray, fill: float) -> np.ndarray:
        b, c, h, w = x.shape
        oh, ow = self.output_shape(x.shape)[2:]
        # Pad enough on the right/bottom for ceil-mode windows too.
        need_h = (oh - 1) * self.stride + self.window
        need_w = (ow - 1) * self.stride + self.window
        ph_lo = self.padding
        ph_hi = max(need_h - h - self.padding, 0)
        pw_lo = self.padding
        pw_hi = max(need_w - w - self.padding, 0)
        self._pads = (ph_lo, ph_hi, pw_lo, pw_hi)
        return np.pad(x, ((0, 0), (0, 0), (ph_lo, ph_hi), (pw_lo, pw_hi)),
                      constant_values=fill)

    def _windows(self, xp: np.ndarray) -> np.ndarray:
        win = sliding_window_view(xp, (self.window, self.window), axis=(2, 3))
        return win[:, :, ::self.stride, ::self.stride]


class MaxPool2d(_Pool2d):
    """Max pooling; backward routes each gradient to its argmax."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x, self)
        xp = self._padded(x, -np.inf)
        win = self._windows(xp)
        b, c, oh, ow, _, _ = win.shape
        flat = win.reshape(b, c, oh, ow, -1)
        self._argmax = flat.argmax(axis=-1)
        self._x_shape = x.shape
        self._xp_shape = xp.shape
        return flat.max(axis=-1)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        b, c, oh, ow = dy.shape
        dxp = np.zeros(self._xp_shape, dtype=dy.dtype)
        di, dj = np.unravel_index(self._argmax, (self.window, self.window))
        bi, ci, pi, qi = np.indices((b, c, oh, ow), sparse=False)
        rows = pi * self.stride + di
        cols = qi * self.stride + dj
        np.add.at(dxp, (bi, ci, rows, cols), dy)
        ph_lo, ph_hi, pw_lo, pw_hi = self._pads
        h_end = dxp.shape[2] - ph_hi
        w_end = dxp.shape[3] - pw_hi
        return dxp[:, :, ph_lo:h_end, pw_lo:w_end]


class AvgPool2d(_Pool2d):
    """Average pooling; backward spreads gradients uniformly."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        check_nchw(x, self)
        xp = self._padded(x, 0.0)
        win = self._windows(xp)
        self._x_shape = x.shape
        self._xp_shape = xp.shape
        return win.mean(axis=(-2, -1))

    def backward(self, dy: np.ndarray) -> np.ndarray:
        b, c, oh, ow = dy.shape
        dxp = np.zeros(self._xp_shape, dtype=dy.dtype)
        share = dy / (self.window * self.window)
        for di in range(self.window):
            for dj in range(self.window):
                dxp[:, :, di:di + (oh - 1) * self.stride + 1:self.stride,
                    dj:dj + (ow - 1) * self.stride + 1:self.stride] += share
        ph_lo, ph_hi, pw_lo, pw_hi = self._pads
        h_end = dxp.shape[2] - ph_hi
        w_end = dxp.shape[3] - pw_hi
        return dxp[:, :, ph_lo:h_end, pw_lo:w_end]
